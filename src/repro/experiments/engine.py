"""Parallel sweep engine: fan (workload, configuration) simulation
jobs across worker processes, backed by the persistent result cache.

The simulations are embarrassingly parallel — each (workload, mode,
config) job replays its workload's captured trace through an
independent :class:`~repro.pipeline.core.PipelineCore` — so the engine
partitions the missing jobs over the fault-tolerant process-per-job
scheduler in :mod:`repro.experiments.faults`: per-job deadlines, lost
-worker recovery, deterministic retry/backoff, and degradation to
in-process serial execution for jobs that fail the pool twice.  With
``jobs=1`` (the default) everything runs sequentially in-process,
which keeps tier-1 tests and determinism untouched; a ``jobs=N`` sweep
produces bit-identical results because every job is self-contained and
outcomes are collected in job order.

Capture-once/replay-many (the paper's Spike methodology): before any
workers start, the engine loads each distinct workload trace exactly
once — in-process memo → persistent trace store → cold interpretation
— and pre-extracts the shared oracle pair set for modes that consume
it.  ``fork`` workers then inherit the loaded traces and pair sets
through copy-on-write; ``spawn`` workers replay the serialized traces
from the store instead of re-interpreting.

Lookup order per job: process-local memo → persistent disk cache →
simulate.  Both layers key on the *full* configuration fingerprint, so
custom-config sweeps are cached exactly like default-config ones.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import FusionMode, ProcessorConfig
from repro.core.results import SimResult
from repro.core.simulator import simulate
from repro.experiments.cache import (
    ResultCache,
    cache_enabled_by_default,
    cache_key,
)
from repro.experiments.faults import (
    JobFailure,
    SweepReport,
    as_failure,
    default_backoff_base,
    default_job_retries,
    default_job_timeout,
    maybe_inject_fault,
    run_jobs,
)
from repro.fusion.oracle import cached_oracle_pairs
from repro.workloads import build_workload, ensure_known, workload_names

#: Environment variable supplying the default worker count
#: (``auto``/``0`` means one worker per CPU).
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (default: 1, sequential).

    An unparsable or non-positive value raises — silently falling back
    to one sequential worker masked typos like ``REPRO_JOBS=four`` and
    made "parallel" runs mysteriously slow.
    """
    raw = os.environ.get(JOBS_ENV, "").strip().lower()
    if not raw:
        return 1
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            "invalid %s=%r: expected a positive integer or 'auto'"
            % (JOBS_ENV, raw)) from None
    if value == 0:
        return os.cpu_count() or 1  # 0 is documented shorthand for auto
    if value < 0:
        raise ValueError(
            "invalid %s=%r: worker count cannot be negative"
            % (JOBS_ENV, raw))
    return value


class SweepJobError(RuntimeError):
    """One or more sweep jobs failed beyond their retry budget.

    The sibling jobs' results were still stored in the memo/disk cache
    before this was raised, so a re-run only re-simulates the failing
    (workload, mode) pairs.  ``failures`` lists them as
    ``(workload, mode_value, detail)`` triples where ``detail`` carries
    the worker-side traceback (sanely truncated); ``report`` — when the
    sweep went through the fault-tolerant scheduler — is the full
    :class:`~repro.experiments.faults.SweepReport` with every attempt's
    class, duration and backoff.
    """

    def __init__(self, failures: List[Tuple[str, str, str]],
                 report: Optional[SweepReport] = None):
        self.failures = list(failures)
        self.report = report
        detail = "; ".join("(%s, %s): %s" % f for f in self.failures)
        super().__init__(
            "%d sweep job(s) failed — completed siblings were cached — %s"
            % (len(self.failures), detail))


def _execute_job(job: Tuple[str, ProcessorConfig]) -> SimResult:
    """Worker entry point: one self-contained simulation."""
    name, config = job
    return simulate(build_workload(name), config, name=name)


def _resolve_segment_trace(spec: Tuple[str, str, Optional[int]]):
    """Materialise the trace a segment job measures.

    ``spec`` is ``(kind, name, arg)``: kind ``"catalog"`` builds the
    regular workload trace (``arg`` = optional µ-op cap), kind
    ``"scaled"`` builds the iteration-scaled trace (``arg`` = target
    µ-ops).  Both paths hit the in-process memo first, so ``fork``
    workers reuse the parent's copy-on-write trace instead of
    re-reading it.
    """
    kind, name, arg = spec
    if kind == "scaled":
        from repro.sampling.scale import build_scaled_workload
        return build_scaled_workload(name, arg)
    if arg:
        return build_workload(name, max_uops=arg)
    return build_workload(name)


def _execute_segment_job(job, fault_token: Optional[str] = None
                         ) -> Tuple[bool, object]:
    """Worker entry point: one exact segment of a longer trace.

    Returns ``(True, delta_dict)`` — the plain picklable counter deltas
    :func:`repro.sampling.segment.simulate_segment` produces — or
    ``(False, JobFailure)`` carrying the worker-side traceback.  The
    worker renumbers its own sub-trace locally; only the small delta
    dict crosses the process boundary.
    """
    try:
        maybe_inject_fault(fault_token)
        spec, config, sub_start, sub_stop, measure_from, measure_to = job
        from repro.sampling.segment import simulate_segment
        trace = _resolve_segment_trace(spec)
        sub = trace.segment(sub_start, sub_stop)
        return True, simulate_segment(sub, config, measure_from, measure_to)
    except Exception as exc:  # noqa: BLE001 — isolate *any* job failure
        return False, JobFailure.from_exception(exc)


def _execute_job_guarded(job: Tuple[str, ProcessorConfig],
                         fault_token: Optional[str] = None
                         ) -> Tuple[bool, object]:
    """Worker entry point that never raises.

    Returns ``(True, result)`` or ``(False, JobFailure)`` so a
    crashing job cannot abort the sweep and discard every completed
    sibling.  The failure payload is a picklable
    :class:`~repro.experiments.faults.JobFailure` — not every
    exception object survives pickling back from a worker — and it
    ships ``traceback.format_exc()`` so worker failures stay
    debuggable from the supervisor.
    """
    try:
        maybe_inject_fault(fault_token)
        return True, _execute_job(job)
    except Exception as exc:  # noqa: BLE001 — isolate *any* job failure
        return False, JobFailure.from_exception(exc)


def preload_traces(specs: Iterable[Tuple[str, ProcessorConfig,
                                         Optional[int]]]) -> None:
    """Capture every distinct workload trace exactly once, and
    pre-extract the oracle pair sets fusion-consuming jobs will need.

    ``specs`` is ``(name, config, max_uops)`` — ``max_uops=None``
    means the catalog default capture.  Run this in the parent before
    any worker pool exists: ``fork`` workers then inherit the loaded
    traces/pair sets via copy-on-write and replay instead of
    re-interpreting, while ``spawn`` workers reload the same traces
    from the persistent store.  Repeats are free (the workload memo
    and the per-trace pair memo both deduplicate), so callers can pass
    one spec per job without pre-deduplicating.  Shared by the sweep
    engine and the simulation service's batch executor.
    """
    for name, config, max_uops in specs:
        if max_uops is not None:
            trace = build_workload(name, max_uops=max_uops)
        else:
            trace = build_workload(name)
        if config.fusion_mode in (FusionMode.HELIOS, FusionMode.ORACLE):
            cached_oracle_pairs(
                trace, granularity=config.cache_access_granularity,
                max_distance=config.max_fusion_distance)


class SweepEngine:
    """Runs (workload, mode) sweeps through memo + disk cache + the
    fault-tolerant worker scheduler (see :mod:`repro.experiments.faults`).

    ``job_timeout`` (seconds, default ``$REPRO_JOB_TIMEOUT`` else off)
    kills and retries jobs that hang past the deadline; ``retries``
    (default ``$REPRO_JOB_RETRIES`` else 2) re-attempts failed jobs
    with deterministic exponential backoff (base ``backoff_base``,
    default ``$REPRO_JOB_BACKOFF`` else 0.25 s); a job that failed the
    pool twice degrades to in-process serial execution.  After any
    ``sweep``/``segmented`` execution, ``last_report`` holds the
    :class:`~repro.experiments.faults.SweepReport` accounting for
    every attempt.
    """

    def __init__(self,
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 use_cache: Optional[bool] = None,
                 memo: Optional[Dict[str, SimResult]] = None,
                 job_timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff_base: Optional[float] = None):
        self.jobs = jobs if jobs is not None else default_jobs()
        self.cache = cache if cache is not None else ResultCache()
        self.use_cache = (use_cache if use_cache is not None
                          else cache_enabled_by_default())
        self.memo = memo if memo is not None else {}
        self.job_timeout = (job_timeout if job_timeout is not None
                            else default_job_timeout())
        if self.job_timeout is not None and self.job_timeout <= 0:
            self.job_timeout = None  # 0 is documented shorthand for off
        self.retries = retries if retries is not None else \
            default_job_retries()
        self.backoff_base = (backoff_base if backoff_base is not None
                             else default_backoff_base())
        self.last_report: Optional[SweepReport] = None

    # -------------------------------------------------------------- lookup --

    def _lookup(self, name: str,
                config: ProcessorConfig) -> Optional[SimResult]:
        key = cache_key(name, config)
        hit = self.memo.get(key)
        if hit is not None:
            return hit
        if self.use_cache:
            hit = self.cache.get(name, config)
            if hit is not None:
                self.memo[key] = hit
                return hit
        return None

    def _store(self, name: str, config: ProcessorConfig,
               result: SimResult) -> None:
        self.memo[cache_key(name, config)] = result
        if self.use_cache:
            self.cache.put(name, config, result)

    # ------------------------------------------------------------- execute --

    @staticmethod
    def _preload(jobs: List[Tuple[str, ProcessorConfig]]) -> None:
        """Capture traces + oracle pair sets before the pool forks
        (see :func:`preload_traces`)."""
        preload_traces((name, config, None) for name, config in jobs)

    def _execute(self, jobs: List[Tuple[str, ProcessorConfig]]
                 ) -> List[Tuple[bool, object]]:
        """Run every job through the fault-tolerant scheduler.

        Returns one ``(ok, result_or_failure)`` pair per job, in job
        order — a crashing, hung, or killed job reports
        ``(False, JobFailure)`` instead of aborting the run and
        discarding its completed siblings.  The per-attempt account is
        left in ``self.last_report``.
        """
        workers = min(self.jobs, len(jobs))
        if workers > 1:
            self._preload(jobs)
        labels = [(name, config.fusion_mode.value)
                  for name, config in jobs]
        outcomes, report = run_jobs(
            jobs, _execute_job_guarded, labels, workers=workers,
            timeout=self.job_timeout, retries=self.retries,
            backoff_base=self.backoff_base)
        self.last_report = report
        return outcomes

    # ------------------------------------------------------------- segments --

    def segmented(self, workload: str, mode: FusionMode,
                  segments: int,
                  warmup: Optional[int] = None,
                  config: Optional[ProcessorConfig] = None,
                  max_uops: Optional[int] = None,
                  scale_to: Optional[int] = None) -> SimResult:
        """Segment-parallel exact simulation of one (workload, mode).

        The trace is cut into ``segments`` contiguous measurement
        regions (:func:`repro.sampling.segment.plan_segments`); each
        region is simulated as an independent job — serially when the
        engine has one worker, over the fault-tolerant worker
        scheduler otherwise
        — and the per-segment counter deltas are spliced back into one
        :class:`SimResult`.  With ``warmup=None`` the splice is
        bit-exact against serial simulation; bounded warmup trades
        exactness for O(L + K·W) total work (see DESIGN §4e).

        ``scale_to`` measures the iteration-scaled trace
        (:func:`repro.sampling.scale.build_scaled_workload`) instead of
        the catalog capture.  Results are memoised in-process only —
        never in the persistent disk cache, whose entries must all mean
        "serial full-detail run" (bounded-warmup splices are
        approximate, and scaled traces are not the catalog capture).
        """
        from repro.sampling.segment import plan_segments, splice

        base = config or ProcessorConfig()
        full = base.with_mode(mode)
        spec = (("scaled", workload, scale_to) if scale_to
                else ("catalog", workload, max_uops))
        memo_key = "%s|spec=%s|segments=%d|warmup=%s" % (
            cache_key(workload, full), spec, segments, warmup)
        hit = self.memo.get(memo_key)
        if hit is not None:
            return hit

        # Materialise the parent trace before planning/forking so
        # ``fork`` workers inherit it copy-on-write.
        trace = _resolve_segment_trace(spec)
        plans = plan_segments(len(trace), segments, warmup)
        jobs = [(spec, full, p.sub_start, p.sub_stop,
                 p.measure_from, p.measure_to) for p in plans]
        workers = min(self.jobs, len(jobs))
        labels = [(workload, "%s:seg%d" % (full.fusion_mode.value,
                                           plan.index))
                  for plan in plans]
        outcomes, report = run_jobs(
            jobs, _execute_segment_job, labels, workers=workers,
            timeout=self.job_timeout, retries=self.retries,
            backoff_base=self.backoff_base)
        self.last_report = report

        deltas = []
        failures: List[Tuple[str, str, str]] = []
        for plan, label, (ok, outcome) in zip(plans, labels, outcomes):
            if ok:
                deltas.append(outcome)
            else:
                failures.append((workload, label[1],
                                 as_failure(outcome).describe()))
        if failures:
            raise SweepJobError(failures, report=report)
        result = splice(deltas, workload, full)
        self.memo[memo_key] = result
        return result

    # --------------------------------------------------------------- sweeps --

    def result(self, workload: str, mode: FusionMode,
               config: Optional[ProcessorConfig] = None) -> SimResult:
        """One (workload, mode) simulation through the cache stack."""
        base = config or ProcessorConfig()
        full = base.with_mode(mode)
        hit = self._lookup(workload, full)
        if hit is not None:
            return hit
        result = _execute_job((workload, full))
        self._store(workload, full, result)
        return result

    def sweep(self,
              modes: Iterable[FusionMode],
              workloads: Optional[List[str]] = None,
              config: Optional[ProcessorConfig] = None,
              ) -> Dict[str, Dict[str, SimResult]]:
        """Sweep workloads × modes; returns results[workload][mode.value].

        Cache misses are simulated in parallel (``self.jobs`` worker
        processes); everything else is served from the memo/disk cache.
        """
        names = (list(workloads) if workloads is not None
                 else workload_names())
        ensure_known(names)
        modes = list(modes)
        base = config or ProcessorConfig()

        results: Dict[str, Dict[str, SimResult]] = {n: {} for n in names}
        missing: List[Tuple[str, ProcessorConfig]] = []
        for name in names:
            for mode in modes:
                full = base.with_mode(mode)
                hit = self._lookup(name, full)
                if hit is not None:
                    results[name][mode.value] = hit
                else:
                    missing.append((name, full))

        if missing:
            failures: List[Tuple[str, str, str]] = []
            for (name, full), (ok, outcome) in zip(missing,
                                                   self._execute(missing)):
                if ok:
                    self._store(name, full, outcome)
                    results[name][full.fusion_mode.value] = outcome
                else:
                    failures.append((name, full.fusion_mode.value,
                                     as_failure(outcome).describe()))
            if failures:
                # Every successful sibling is already in the memo/disk
                # cache; re-running the sweep re-simulates only these.
                raise SweepJobError(failures, report=self.last_report)
        return results
