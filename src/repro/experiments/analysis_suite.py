"""Legality-census experiment: the analyzer's view of every workload.

``repro experiment legality`` tabulates, per workload, how many
candidate catalyst windows the static legality analyzer
(:mod:`repro.analysis.legality`) proves fuseable, how many the oracle
actually pairs, and the dominant rejection reason — the quantitative
companion to the paper's Section III census of *why* pairs cannot
fuse (aliasing stores, deadlock dependences, span overflows).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.legality import analyze_trace_legality
from repro.config import ProcessorConfig
from repro.experiments.figures import ExperimentResult, _names
from repro.fusion.oracle import cached_oracle_pairs
from repro.stats import amean
from repro.workloads import build_workload


def legality_census(workloads: Optional[Sequence[str]] = None,
                    config: Optional[ProcessorConfig] = None,
                    ) -> ExperimentResult:
    """Per-workload legal-pair counts and the dominant rejection."""
    cfg = config or ProcessorConfig()
    rows: List[List] = []
    for name in _names(workloads):
        trace = build_workload(name)
        report = analyze_trace_legality(
            trace, granularity=cfg.cache_access_granularity,
            max_distance=cfg.max_fusion_distance)
        pairs = cached_oracle_pairs(
            trace, granularity=cfg.cache_access_granularity,
            max_distance=cfg.max_fusion_distance)
        legal = len(report.legal)
        dominant = "-"
        if report.reason_counts:
            reason = max(report.reason_counts,
                         key=lambda r: report.reason_counts[r])
            dominant = "%s (%d)" % (reason.value,
                                    report.reason_counts[reason])
        rows.append([
            name, report.candidates, legal,
            100.0 * legal / report.candidates if report.candidates else 0.0,
            len(pairs), dominant,
        ])
    summary = ["average",
               amean(r[1] for r in rows), amean(r[2] for r in rows),
               amean(r[3] for r in rows), amean(r[4] for r in rows), ""]
    return ExperimentResult(
        name="Legality census: provably-fuseable catalyst windows",
        headers=["workload", "candidates", "legal", "legal%",
                 "oracle pairs", "dominant rejection"],
        rows=rows, summary=summary,
        notes="oracle pairs <= legal by the containment property "
              "(checked by `repro analyze` and the property tests)")
