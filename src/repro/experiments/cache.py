"""Persistent on-disk simulation result cache.

Every (workload, configuration) simulation outcome can be written to a
small JSON file keyed by the workload name, a stable fingerprint of the
full :class:`~repro.config.ProcessorConfig` (fusion mode included) and
a cache schema version.  Later sweeps — in the same process, another
process, or another run entirely — are served from disk instead of
re-simulating, which is what lets the figure/table generators and the
benchmark suite share their heavily-overlapping sweeps.

The cache is safe to delete at any time (``repro cache clear``), and it
is safe under *concurrent* readers and writers (the parallel sweep's
worker processes): a corrupted or truncated entry is treated as a miss
and quarantined — never blindly unlinked, which could race a
concurrent ``put()`` and destroy a fresh valid entry — orphaned
``*.tmp`` files from killed writers are swept age-gated at init, and a
full or read-only cache directory degrades the cache to uncached mode
with a one-time warning instead of aborting the run (see
:mod:`repro.core.fsutil`).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.config import ProcessorConfig
from repro.core import fsutil
from repro.core.results import SimResult

#: Bump whenever the on-disk layout or the meaning of any persisted
#: counter changes; old entries then simply stop matching.
#: v2: top-down ``cpi_buckets`` in CoreStats, ``commit_width`` on
#: SimResult, nan-aware ``fp_accuracy_pct`` — pre-observability
#: entries would deserialize with empty buckets, so they must miss.
#: v3: ``deadlock_unfusions`` in CoreStats plus the memory-carried
#: deadlock repairs and the same-dest load-pair rejection in the
#: Helios decode path — pre-analyzer entries could hold timing
#: produced by a run without the catalyst-deadlock and legality
#: fixes, so they must miss.
CACHE_SCHEMA_VERSION = 3

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Set (to anything non-empty) to disable the persistent cache.
NO_CACHE_ENV = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_enabled_by_default() -> bool:
    return not os.environ.get(NO_CACHE_ENV)


def cache_key(workload: str, config: ProcessorConfig) -> str:
    """Filename-safe key: workload + config fingerprint + schema."""
    safe = "".join(c if c.isalnum() or c in "._-" else "_"
                   for c in workload)
    return "%s-%s-v%d" % (safe, config.fingerprint(), CACHE_SCHEMA_VERSION)


class ResultCache:
    """One directory of JSON-serialized :class:`SimResult` entries."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        #: Flipped by the first environmental write failure (ENOSPC,
        #: read-only dir, permissions): later ``put`` calls become
        #: no-ops instead of re-raising on every job of a sweep.
        self.degraded = False
        # Reclaim temporaries orphaned by writers killed mid-put.
        fsutil.sweep_stale_tmps(self.root)

    def path_for(self, key: str) -> Path:
        return self.root / (key + ".json")

    # ------------------------------------------------------------- access --

    def get(self, workload: str,
            config: ProcessorConfig) -> Optional[SimResult]:
        """The cached result, or ``None`` on miss / corruption."""
        path = self.path_for(cache_key(workload, config))
        seen = None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                # Pin the identity of the file we actually read, so a
                # corrupt parse quarantines *this* file and never one a
                # concurrent put() replaced it with.
                seen = os.fstat(handle.fileno())
                data = json.load(handle)
            if data.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            return SimResult.from_dict(data["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError):
            # Corrupted / truncated / foreign file: quarantine it (if
            # still the same file) and miss.
            fsutil.quarantine_if_unchanged(path, seen)
            return None
        except OSError:
            # Environmental read failure: miss without condemning the
            # entry — it may be perfectly valid.
            return None

    def put(self, workload: str, config: ProcessorConfig,
            result: SimResult) -> None:
        """Atomically persist one result (tmp file + rename).

        An environmental failure (disk full, read-only or unwritable
        cache directory) degrades the cache to uncached mode with a
        one-time warning instead of aborting the sweep.
        """
        if self.degraded:
            return
        path = self.path_for(cache_key(workload, config))
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "workload": workload,
            "mode": config.fusion_mode.value,
            "fingerprint": config.fingerprint(),
            "result": result.to_dict(),
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        except OSError as exc:
            self._degrade(exc)
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, str(path))
        except OSError as exc:
            fsutil.unlink_quiet(tmp)
            self._degrade(exc)
        except BaseException:
            # Programming errors (unserializable payload, interrupts)
            # still propagate — only *environmental* failures degrade.
            fsutil.unlink_quiet(tmp)
            raise

    def _degrade(self, exc: BaseException) -> None:
        if not self.degraded:
            self.degraded = True
            fsutil.warn_store_degraded("result cache", self.root, exc)

    # ---------------------------------------------------------- inspection --

    def entries(self) -> List[Dict]:
        """Metadata of every readable entry (for ``repro cache``).

        Robust against concurrent mutation: a file deleted by another
        process between the directory listing and the ``stat``/read is
        skipped, not a crash.
        """
        found = []
        for path in sorted(self.root.glob("*.json")):
            st = fsutil.stat_or_none(path)
            if st is None:
                continue  # deleted by a concurrent clear()/put()
            info = {"file": path.name, "bytes": st.st_size}
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                info["workload"] = data.get("workload", "?")
                info["mode"] = data.get("mode", "?")
                info["schema"] = data.get("schema", "?")
            except FileNotFoundError:
                continue  # vanished between stat and open
            except (ValueError, OSError):
                info["workload"] = info["mode"] = "?"
                info["schema"] = "corrupt"
            found.append(info)
        return found

    def size_bytes(self) -> int:
        return fsutil.sum_file_sizes(self.root.glob("*.json"))

    def orphan_tmps(self) -> List[Path]:
        """Leftover ``mkstemp`` files from writers that died mid-put."""
        return fsutil.tmp_files(self.root)

    def quarantined(self) -> List[Path]:
        """Entries moved aside as corrupt (``*.corrupt``)."""
        return fsutil.quarantined_files(self.root)

    def clear(self) -> int:
        """Delete every entry — including orphaned temporaries and
        quarantined corrupt files; returns how many were removed."""
        removed = 0
        for pattern in ("*.json", "*.tmp", "*" + fsutil.QUARANTINE_SUFFIX):
            for path in self.root.glob(pattern):
                if fsutil.unlink_quiet(path):
                    removed += 1
        return removed
