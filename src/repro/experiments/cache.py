"""Persistent on-disk simulation result cache.

Every (workload, configuration) simulation outcome can be written to a
small JSON file keyed by the workload name, a stable fingerprint of the
full :class:`~repro.config.ProcessorConfig` (fusion mode included) and
a cache schema version.  Later sweeps — in the same process, another
process, or another run entirely — are served from disk instead of
re-simulating, which is what lets the figure/table generators and the
benchmark suite share their heavily-overlapping sweeps.

The cache is safe to delete at any time (``repro cache clear``), and a
corrupted or truncated entry is treated as a miss and removed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.config import ProcessorConfig
from repro.core.results import SimResult

#: Bump whenever the on-disk layout or the meaning of any persisted
#: counter changes; old entries then simply stop matching.
#: v2: top-down ``cpi_buckets`` in CoreStats, ``commit_width`` on
#: SimResult, nan-aware ``fp_accuracy_pct`` — pre-observability
#: entries would deserialize with empty buckets, so they must miss.
#: v3: ``deadlock_unfusions`` in CoreStats plus the memory-carried
#: deadlock repairs and the same-dest load-pair rejection in the
#: Helios decode path — pre-analyzer entries could hold timing
#: produced by a run without the catalyst-deadlock and legality
#: fixes, so they must miss.
CACHE_SCHEMA_VERSION = 3

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Set (to anything non-empty) to disable the persistent cache.
NO_CACHE_ENV = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_enabled_by_default() -> bool:
    return not os.environ.get(NO_CACHE_ENV)


def cache_key(workload: str, config: ProcessorConfig) -> str:
    """Filename-safe key: workload + config fingerprint + schema."""
    safe = "".join(c if c.isalnum() or c in "._-" else "_"
                   for c in workload)
    return "%s-%s-v%d" % (safe, config.fingerprint(), CACHE_SCHEMA_VERSION)


class ResultCache:
    """One directory of JSON-serialized :class:`SimResult` entries."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / (key + ".json")

    # ------------------------------------------------------------- access --

    def get(self, workload: str,
            config: ProcessorConfig) -> Optional[SimResult]:
        """The cached result, or ``None`` on miss / corruption."""
        path = self.path_for(cache_key(workload, config))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            return SimResult.from_dict(data["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupted / truncated / foreign file: drop it and miss.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, workload: str, config: ProcessorConfig,
            result: SimResult) -> None:
        """Atomically persist one result (tmp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(cache_key(workload, config))
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "workload": workload,
            "mode": config.fusion_mode.value,
            "fingerprint": config.fingerprint(),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, str(path))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ---------------------------------------------------------- inspection --

    def entries(self) -> List[Dict]:
        """Metadata of every readable entry (for ``repro cache``)."""
        found = []
        for path in sorted(self.root.glob("*.json")):
            info = {"file": path.name, "bytes": path.stat().st_size}
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                info["workload"] = data.get("workload", "?")
                info["mode"] = data.get("mode", "?")
                info["schema"] = data.get("schema", "?")
            except (ValueError, OSError):
                info["workload"] = info["mode"] = "?"
                info["schema"] = "corrupt"
            found.append(info)
        return found

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
