"""Fault-tolerant sweep execution: scheduler, retries, fault injection.

The sweep engine's jobs are coarse (whole-trace simulations) and
embarrassingly parallel, which makes worker loss cheap to recover from
— *if* the execution layer notices.  A bare ``pool.map`` does not: an
OOM-killed worker wedges the map forever, a hung simulation stalls the
whole sweep, and a transient failure aborts it.  This module provides
the machinery that makes :class:`~repro.experiments.engine.SweepEngine`
survive all three:

* :func:`run_jobs` — a small process-per-job supervisor replacing
  ``pool.map``.  Every job runs in its own (daemonic, fork-preferring)
  worker process with a dedicated result pipe, so losing one worker —
  SIGKILL, OOM, segfault — loses exactly one in-flight attempt and
  never a completed sibling.  The supervisor enforces an optional
  per-job deadline (``REPRO_JOB_TIMEOUT``, default off so existing
  flows stay bit-identical), retries failed attempts with capped,
  jitter-free exponential backoff (``REPRO_JOB_RETRIES`` /
  ``REPRO_JOB_BACKOFF``), and degrades a job that failed the pool
  twice to in-process serial execution in the supervisor itself, where
  worker loss is impossible.
* :class:`SweepReport` — a structured account of every attempt (where
  it ran, how long, how it ended) so a sweep's fault history is
  inspectable (``repro sweep-report`` / ``--report-json``) instead of
  vanishing into a stringified exception.
* :func:`maybe_inject_fault` — a test-only fault hook consumed inside
  the worker entry points, driven by ``REPRO_FAULT_INJECT`` (e.g.
  ``hang:0.1,exit:0.05,raise:0.2``).  Decisions are a pure hash of the
  per-attempt token, so a given sweep injects the *same* faults on
  every run — CI can exercise the hang/kill/raise paths
  deterministically.  Faults only ever fire inside pool worker
  processes (the supervisor process is immune), so serial runs and the
  degraded-serial fallback always complete.

Everything here is deliberately free of randomness and wall-clock
decision making: backoff delays are a fixed schedule, injection is
content-addressed, and tests can pin every path.
"""

from __future__ import annotations

import hashlib
import heapq
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# --------------------------------------------------------------- env knobs --

#: Per-job wall-clock deadline in seconds (float).  Unset/``0``/``off``
#: disables the deadline, which keeps existing flows bit-identical (no
#: worker is ever killed mid-simulation).
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"

#: How many times a failed job is re-attempted (beyond its first try).
JOB_RETRIES_ENV = "REPRO_JOB_RETRIES"

#: Base of the exponential backoff schedule, in seconds.
JOB_BACKOFF_ENV = "REPRO_JOB_BACKOFF"

#: Test-only fault injection spec, e.g. ``hang:0.1,exit:0.05,raise:0.2``.
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

DEFAULT_JOB_RETRIES = 2
DEFAULT_BACKOFF_BASE_S = 0.25
#: Delays never exceed this, however many attempts a job accumulates.
BACKOFF_CAP_S = 30.0
#: Pool failures after which a job's remaining attempts run serially
#: in the supervisor process (where workers cannot be lost or hung).
POOL_FAILURES_BEFORE_DEGRADE = 2
#: Exit code of an injected ``exit`` fault (visible in reports).
FAULT_EXIT_CODE = 86

# Failure classes (AttemptRecord.outcome values).
OUTCOME_OK = "ok"
OUTCOME_RAISE = "raise"            # the job raised inside a live worker
OUTCOME_TIMEOUT = "timeout"        # deadline exceeded; worker killed
OUTCOME_LOST = "lost-worker"       # worker died without reporting back

FAULT_KINDS = ("hang", "exit", "raise")

#: Characters of traceback tail kept when a failure is folded into a
#: :class:`SweepJobError` message (the full text stays on the record).
TRACEBACK_LIMIT_CHARS = 1500


def default_job_timeout() -> Optional[float]:
    """Deadline from ``$REPRO_JOB_TIMEOUT`` (seconds), or ``None``.

    ``0`` and ``off`` mean "no deadline" (the default); anything else
    must parse as a positive float — silently ignoring a typo would
    turn the protection off without telling anyone.
    """
    raw = os.environ.get(JOB_TIMEOUT_ENV, "").strip().lower()
    if not raw or raw in ("0", "0.0", "off", "none"):
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError("invalid %s=%r: expected seconds (float), "
                         "'0' or 'off'" % (JOB_TIMEOUT_ENV, raw)) from None
    if value <= 0 or value != value:  # rejects negatives and NaN
        raise ValueError("invalid %s=%r: deadline must be positive"
                         % (JOB_TIMEOUT_ENV, raw))
    return value


def default_job_retries() -> int:
    """Retry budget from ``$REPRO_JOB_RETRIES`` (default %d)."""
    raw = os.environ.get(JOB_RETRIES_ENV, "").strip()
    if not raw:
        return DEFAULT_JOB_RETRIES
    try:
        value = int(raw)
    except ValueError:
        raise ValueError("invalid %s=%r: expected a non-negative integer"
                         % (JOB_RETRIES_ENV, raw)) from None
    if value < 0:
        raise ValueError("invalid %s=%r: retries cannot be negative"
                         % (JOB_RETRIES_ENV, raw))
    return value


default_job_retries.__doc__ = (default_job_retries.__doc__
                               % DEFAULT_JOB_RETRIES)


def default_backoff_base() -> float:
    """Backoff base from ``$REPRO_JOB_BACKOFF`` (seconds, default
    %.2f); ``0`` disables the delays (tests use this)."""
    raw = os.environ.get(JOB_BACKOFF_ENV, "").strip()
    if not raw:
        return DEFAULT_BACKOFF_BASE_S
    try:
        value = float(raw)
    except ValueError:
        raise ValueError("invalid %s=%r: expected seconds (float)"
                         % (JOB_BACKOFF_ENV, raw)) from None
    if value < 0 or value != value:
        raise ValueError("invalid %s=%r: backoff cannot be negative"
                         % (JOB_BACKOFF_ENV, raw))
    return value


default_backoff_base.__doc__ = (default_backoff_base.__doc__
                                % DEFAULT_BACKOFF_BASE_S)


def backoff_delay(next_attempt: int, base: float) -> float:
    """Deterministic delay before attempt ``next_attempt`` (1-based).

    The schedule is jitter-free so tests are stable: attempt 2 waits
    ``base`` seconds, attempt 3 waits ``2*base``, then ``4*base``, …
    capped at :data:`BACKOFF_CAP_S`.  Attempt 1 never waits.
    """
    if next_attempt <= 1 or base <= 0:
        return 0.0
    return min(base * (2.0 ** (next_attempt - 2)), BACKOFF_CAP_S)


# --------------------------------------------------------- fault injection --

class InjectedFault(RuntimeError):
    """Raised by an injected ``raise`` fault (transient by definition)."""


@dataclass(frozen=True)
class FaultPlan:
    """Parsed ``REPRO_FAULT_INJECT`` spec: ordered (kind, probability)."""

    entries: Tuple[Tuple[str, float], ...]

    def probability(self, kind: str) -> float:
        for name, prob in self.entries:
            if name == kind:
                return prob
        return 0.0

    def decide(self, token: str) -> Optional[str]:
        """The fault to inject for ``token``, or ``None``.

        Pure function of the token: the token's hash is mapped to a
        fraction in [0, 1) and matched against the cumulative
        probability ranges in spec order, so a given (job, attempt)
        fails identically on every run of the same sweep.
        """
        digest = hashlib.sha256(token.encode("utf-8")).hexdigest()
        fraction = int(digest[:12], 16) / float(16 ** 12)
        cumulative = 0.0
        for kind, prob in self.entries:
            cumulative += prob
            if fraction < cumulative:
                return kind
        return None


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse ``kind:prob[,kind:prob...]`` — kinds hang/exit/raise.

    Rejects malformed specs loudly (unknown kind, bad or out-of-range
    probability, duplicate kind, probabilities summing past 1.0): a
    typo here must not silently disable the robustness drill.
    """
    entries: List[Tuple[str, float]] = []
    seen = set()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            raise ValueError("empty entry in fault spec %r" % spec)
        kind, sep, prob_text = part.partition(":")
        kind = kind.strip()
        if not sep or not prob_text.strip():
            raise ValueError("fault entry %r is not kind:probability"
                             % part)
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (choose from %s)"
                             % (kind, ", ".join(FAULT_KINDS)))
        if kind in seen:
            raise ValueError("duplicate fault kind %r in %r"
                             % (kind, spec))
        try:
            prob = float(prob_text)
        except ValueError:
            raise ValueError("fault probability %r is not a float"
                             % prob_text) from None
        if not 0.0 <= prob <= 1.0:  # also rejects NaN
            raise ValueError("fault probability %r outside [0, 1]"
                             % prob_text)
        seen.add(kind)
        entries.append((kind, prob))
    if not entries:
        raise ValueError("empty fault spec")
    if sum(prob for _, prob in entries) > 1.0 + 1e-9:
        raise ValueError("fault probabilities in %r sum past 1.0" % spec)
    return FaultPlan(tuple(entries))


_PLAN_MEMO: Dict[str, FaultPlan] = {}


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan from ``$REPRO_FAULT_INJECT``, or ``None`` when unset.

    Raises :class:`ValueError` on a malformed spec — validated in the
    supervisor before any worker starts, not deep inside one.
    """
    spec = os.environ.get(FAULT_INJECT_ENV, "").strip()
    if not spec:
        return None
    plan = _PLAN_MEMO.get(spec)
    if plan is None:
        plan = parse_fault_spec(spec)
        _PLAN_MEMO[spec] = plan
    return plan


def maybe_inject_fault(token: Optional[str]) -> None:
    """Test-only fault hook called by the worker entry points.

    No-op unless ``$REPRO_FAULT_INJECT`` is set *and* this process is
    a worker (has a parent in the multiprocessing sense): the
    supervisor and plain serial runs are immune by construction, which
    is what guarantees the degraded-serial fallback always completes.
    """
    if not token:
        return
    plan = active_fault_plan()
    if plan is None:
        return
    if multiprocessing.parent_process() is None:
        return
    kind = plan.decide(token)
    if kind is None:
        return
    if kind == "exit":
        os._exit(FAULT_EXIT_CODE)      # abrupt death: SIGKILL/OOM stand-in
    if kind == "raise":
        raise InjectedFault("injected fault (token %r)" % token)
    if kind == "hang":
        while True:                    # killed by the job deadline
            time.sleep(0.5)


def ensure_hang_faults_bounded(timeout: Optional[float]) -> None:
    """Refuse a pool run that could hang forever.

    Called by the supervisor before spawning workers: injecting
    ``hang`` faults without a job deadline would wedge the sweep the
    way the pre-fault-tolerance engine did, so make it a loud error.
    Also surfaces malformed specs early (see :func:`active_fault_plan`).
    """
    plan = active_fault_plan()
    if plan is not None and plan.probability("hang") > 0 and timeout is None:
        raise ValueError(
            "%s injects hang faults but no job deadline is set; pass "
            "--job-timeout or set %s" % (FAULT_INJECT_ENV, JOB_TIMEOUT_ENV))


# ------------------------------------------------------- failure + reports --

@dataclass
class JobFailure:
    """Picklable description of one failed attempt.

    Workers ship this back instead of exception objects (not every
    exception survives pickling) — and, unlike the stringified
    ``"ExcType: message"`` it replaces, it carries the worker-side
    traceback so failures are debuggable from the supervisor.
    """

    error: str                       # "ExcType: message"
    kind: str = OUTCOME_RAISE        # raise | timeout | lost-worker
    traceback: str = ""
    exitcode: Optional[int] = None

    @classmethod
    def from_exception(cls, exc: BaseException) -> "JobFailure":
        return cls(error="%s: %s" % (type(exc).__name__, exc),
                   traceback=traceback.format_exc())

    def describe(self) -> str:
        """Error plus a sanely-truncated traceback tail."""
        if not self.traceback:
            return self.error
        tail = self.traceback.strip()
        if len(tail) > TRACEBACK_LIMIT_CHARS:
            tail = "... (truncated) ...\n" + tail[-TRACEBACK_LIMIT_CHARS:]
        return "%s\n%s" % (self.error, tail)

    def __str__(self) -> str:
        return self.error


def as_failure(payload: object,
               kind: str = OUTCOME_RAISE) -> JobFailure:
    """Coerce a worker failure payload to :class:`JobFailure`.

    Tolerates the legacy stringified form so monkeypatched workers in
    older tests (and third-party worker functions) keep working.
    """
    if isinstance(payload, JobFailure):
        return payload
    return JobFailure(error=str(payload), kind=kind)


@dataclass
class AttemptRecord:
    """One attempt of one job, wherever and however it ended."""

    attempt: int                     # 1-based, monotonically increasing
    where: str                       # "pool" | "serial"
    outcome: str                     # ok | raise | timeout | lost-worker
    duration_s: float
    error: Optional[str] = None
    traceback: Optional[str] = None
    exitcode: Optional[int] = None
    backoff_s: float = 0.0           # delay scheduled before the NEXT attempt

    def to_dict(self) -> Dict:
        return {
            "attempt": self.attempt, "where": self.where,
            "outcome": self.outcome,
            "duration_s": round(self.duration_s, 6),
            "error": self.error, "traceback": self.traceback,
            "exitcode": self.exitcode, "backoff_s": self.backoff_s,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AttemptRecord":
        return cls(attempt=int(data["attempt"]), where=data["where"],
                   outcome=data["outcome"],
                   duration_s=float(data["duration_s"]),
                   error=data.get("error"),
                   traceback=data.get("traceback"),
                   exitcode=data.get("exitcode"),
                   backoff_s=float(data.get("backoff_s", 0.0)))


@dataclass
class JobRecord:
    """Every attempt of one (workload, mode) job."""

    workload: str
    mode: str
    ok: bool = False
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1

    @property
    def degraded(self) -> bool:
        """True when the job fell back to in-supervisor serial
        execution after failing the pool."""
        return any(a.where == "serial" for a in self.attempts) \
            and any(a.where == "pool" for a in self.attempts)

    def to_dict(self) -> Dict:
        return {"workload": self.workload, "mode": self.mode,
                "ok": self.ok,
                "attempts": [a.to_dict() for a in self.attempts]}

    @classmethod
    def from_dict(cls, data: Dict) -> "JobRecord":
        return cls(workload=data["workload"], mode=data["mode"],
                   ok=bool(data["ok"]),
                   attempts=[AttemptRecord.from_dict(a)
                             for a in data["attempts"]])


REPORT_SCHEMA_VERSION = 1


@dataclass
class SweepReport:
    """Structured account of one sweep execution (``--report-json``)."""

    jobs: List[JobRecord] = field(default_factory=list)
    workers: int = 1
    timeout_s: Optional[float] = None
    retries: int = 0

    # ------------------------------------------------------- accounting --

    @property
    def attempts_total(self) -> int:
        return sum(len(job.attempts) for job in self.jobs)

    @property
    def failed_jobs(self) -> List[JobRecord]:
        return [job for job in self.jobs if not job.ok]

    @property
    def retried_jobs(self) -> List[JobRecord]:
        return [job for job in self.jobs if job.retried]

    @property
    def degraded_jobs(self) -> List[JobRecord]:
        return [job for job in self.jobs if job.degraded]

    def failure_classes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs:
            for attempt in job.attempts:
                if attempt.outcome != OUTCOME_OK:
                    counts[attempt.outcome] = \
                        counts.get(attempt.outcome, 0) + 1
        return counts

    # ---------------------------------------------------------- wire I/O --

    def to_dict(self) -> Dict:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "workers": self.workers,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "jobs": [job.to_dict() for job in self.jobs],
            "summary": {
                "jobs": len(self.jobs),
                "ok": len(self.jobs) - len(self.failed_jobs),
                "failed": len(self.failed_jobs),
                "retried": len(self.retried_jobs),
                "degraded_to_serial": len(self.degraded_jobs),
                "attempts": self.attempts_total,
                "failure_classes": self.failure_classes(),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepReport":
        if not isinstance(data, dict) or "jobs" not in data:
            raise ValueError("not a sweep report payload (no 'jobs')")
        if data.get("schema") != REPORT_SCHEMA_VERSION:
            raise ValueError("unsupported sweep report schema %r"
                             % data.get("schema"))
        timeout = data.get("timeout_s")
        return cls(jobs=[JobRecord.from_dict(j) for j in data["jobs"]],
                   workers=int(data.get("workers", 1)),
                   timeout_s=None if timeout is None else float(timeout),
                   retries=int(data.get("retries", 0)))

    def render(self) -> str:
        """Human-readable summary (``repro sweep-report``)."""
        lines = ["sweep report: %d job(s), %d worker(s), timeout %s, "
                 "retries %d"
                 % (len(self.jobs), self.workers,
                    ("off" if self.timeout_s is None
                     else "%.1fs" % self.timeout_s), self.retries)]
        lines.append("  ok %d, failed %d; retried %d, "
                     "degraded-to-serial %d; attempts %d"
                     % (len(self.jobs) - len(self.failed_jobs),
                        len(self.failed_jobs), len(self.retried_jobs),
                        len(self.degraded_jobs), self.attempts_total))
        classes = self.failure_classes()
        if classes:
            lines.append("  failure classes: " + ", ".join(
                "%s %d" % (kind, count)
                for kind, count in sorted(classes.items())))
        for job in self.jobs:
            trail = ", ".join("%s %s" % (a.where, a.outcome)
                              for a in job.attempts)
            total = sum(a.duration_s for a in job.attempts)
            lines.append("  %s/%s: %s after %d attempt(s) [%s] %.2fs"
                         % (job.workload, job.mode,
                            "ok" if job.ok else "FAILED",
                            len(job.attempts), trail, total))
            if not job.ok and job.attempts:
                last = job.attempts[-1]
                if last.error:
                    lines.append("    last error: %s" % last.error)
        return "\n".join(lines)


# ------------------------------------------------------------- supervisor --

#: ``worker(job, token) -> (ok, payload)`` — must be picklable (module
#: level) and must not raise: failures come back as ``(False, ...)``.
WorkerFn = Callable[[object, Optional[str]], Tuple[bool, object]]


def _attempt_token(record: JobRecord, attempt: int) -> str:
    """Deterministic per-attempt token (drives fault injection)."""
    return "%s|%s|a%d" % (record.workload, record.mode, attempt)


def _child_entry(worker: WorkerFn, job: object, token: Optional[str],
                 conn) -> None:
    """Worker-process main: run the guarded worker, ship the outcome."""
    try:
        outcome = worker(job, token)
    except BaseException as exc:  # noqa: BLE001 — the pipe must get *something*
        outcome = (False, JobFailure.from_exception(exc))
    try:
        conn.send(outcome)
    except Exception:
        try:
            conn.send((False, JobFailure(
                error="ResultShippingError: outcome could not be "
                      "pickled back to the supervisor")))
        except Exception:
            pass  # supervisor will classify the silence as lost-worker
    finally:
        conn.close()


@dataclass
class _Running:
    index: int
    attempt: int
    proc: object
    conn: object
    start: float
    deadline: Optional[float]


def _preferred_context(mp_context=None):
    if mp_context is not None:
        return mp_context
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods
                                      else None)


def run_jobs(jobs: Sequence[object], worker: WorkerFn,
             labels: Sequence[Tuple[str, str]], *,
             workers: int,
             timeout: Optional[float] = None,
             retries: Optional[int] = None,
             backoff_base: Optional[float] = None,
             mp_context=None,
             force_pool: bool = False,
             ) -> Tuple[List[Tuple[bool, object]], SweepReport]:
    """Run every job fault-tolerantly; returns (outcomes, report).

    ``outcomes`` is one ``(ok, result_or_JobFailure)`` pair per job in
    job order, exactly like the ``pool.map`` it replaces — but a hung
    job is killed at its deadline, a lost worker (SIGKILL/OOM) fails
    only its own attempt, failed attempts are retried up to ``retries``
    times with deterministic exponential backoff, and a job that
    failed the pool :data:`POOL_FAILURES_BEFORE_DEGRADE` times runs
    its remaining attempts serially in this process.  With
    ``workers <= 1`` everything runs serially here (no deadline — a
    process cannot kill itself mid-job) with the same retry policy.

    A single-job batch normally also runs serially (a pool buys it
    nothing); ``force_pool=True`` sends it through a worker process
    anyway when ``workers > 1``.  Long-running callers (the simulation
    service) use this so *every* execution is isolated in a killable
    worker — a deadline, a crash, or an injected fault then degrades
    one request instead of the resident process.
    """
    if len(jobs) != len(labels):
        raise ValueError("jobs and labels length mismatch")
    retries = default_job_retries() if retries is None else retries
    backoff_base = (default_backoff_base() if backoff_base is None
                    else backoff_base)
    max_attempts = 1 + max(0, retries)
    records = [JobRecord(workload=w, mode=m) for w, m in labels]
    report = SweepReport(jobs=records, workers=max(1, workers),
                         timeout_s=timeout, retries=retries)
    outcomes: List[Optional[Tuple[bool, object]]] = [None] * len(jobs)

    use_pool = workers > 1 and len(jobs) >= 1 \
        and (len(jobs) > 1 or force_pool)

    # Validate the injection spec up front (and refuse unbounded hangs)
    # even on the serial path: a malformed REPRO_FAULT_INJECT must fail
    # the run, not silently skip injection.
    if use_pool:
        ensure_hang_faults_bounded(timeout)
    else:
        active_fault_plan()

    if not use_pool:
        _run_serial_attempts(jobs, worker, records, outcomes,
                             range(len(jobs)), 1, max_attempts,
                             backoff_base)
        return [out for out in outcomes], report  # type: ignore[misc]

    _run_pool(jobs, worker, records, outcomes, workers=workers,
              timeout=timeout, max_attempts=max_attempts,
              backoff_base=backoff_base, mp_context=mp_context)
    return [out for out in outcomes], report  # type: ignore[misc]


def _record_attempt(record: JobRecord, attempt: int, where: str,
                    duration: float, ok: bool,
                    failure: Optional[JobFailure]) -> AttemptRecord:
    entry = AttemptRecord(
        attempt=attempt, where=where,
        outcome=OUTCOME_OK if ok else failure.kind,
        duration_s=duration,
        error=None if ok else failure.error,
        traceback=None if ok else (failure.traceback or None),
        exitcode=None if ok else failure.exitcode)
    record.attempts.append(entry)
    return entry


def _run_serial_attempts(jobs, worker, records, outcomes, indices,
                         first_attempt_for_all, max_attempts,
                         backoff_base,
                         first_attempts: Optional[Dict[int, int]] = None,
                         ) -> None:
    """Attempt loop in the supervisor process (serial mode and the
    degraded-serial phase of the pool mode)."""
    for index in indices:
        record = records[index]
        attempt = (first_attempts[index] if first_attempts is not None
                   else first_attempt_for_all)
        while True:
            token = _attempt_token(record, attempt)
            start = time.monotonic()
            ok, payload = worker(jobs[index], token)
            duration = time.monotonic() - start
            failure = None if ok else as_failure(payload)
            entry = _record_attempt(record, attempt, "serial", duration,
                                    ok, failure)
            if ok:
                record.ok = True
                outcomes[index] = (True, payload)
                break
            outcomes[index] = (False, failure)
            if attempt >= max_attempts:
                break
            attempt += 1
            delay = backoff_delay(attempt, backoff_base)
            entry.backoff_s = delay
            if delay:
                time.sleep(delay)


def _run_pool(jobs, worker, records, outcomes, *, workers, timeout,
              max_attempts, backoff_base, mp_context) -> None:
    ctx = _preferred_context(mp_context)
    # Min-heap of (ready_at, seq, index, attempt): seq keeps the pop
    # order stable when several retries become ready together.
    pending: List[Tuple[float, int, int, int]] = []
    seq = 0
    for index in range(len(jobs)):
        heapq.heappush(pending, (0.0, seq, index, 1))
        seq += 1
    running: List[_Running] = []
    pool_failures = [0] * len(jobs)
    # Jobs degraded to the serial phase: index -> next attempt number.
    degraded: Dict[int, int] = {}

    def _spawn(index: int, attempt: int) -> None:
        token = _attempt_token(records[index], attempt)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child_entry,
                           args=(worker, jobs[index], token, child_conn),
                           daemon=True)
        proc.start()
        child_conn.close()
        start = time.monotonic()
        running.append(_Running(
            index=index, attempt=attempt, proc=proc, conn=parent_conn,
            start=start,
            deadline=None if timeout is None else start + timeout))

    def _fail(run: _Running, failure: JobFailure, now: float) -> None:
        record = records[run.index]
        entry = _record_attempt(record, run.attempt, "pool",
                                now - run.start, False, failure)
        outcomes[run.index] = (False, failure)
        pool_failures[run.index] += 1
        if run.attempt >= max_attempts:
            return
        next_attempt = run.attempt + 1
        delay = backoff_delay(next_attempt, backoff_base)
        entry.backoff_s = delay
        if pool_failures[run.index] >= POOL_FAILURES_BEFORE_DEGRADE:
            degraded[run.index] = next_attempt
        else:
            nonlocal seq
            heapq.heappush(pending,
                           (now + delay, seq, run.index, next_attempt))
            seq += 1

    try:
        while pending or running:
            now = time.monotonic()
            while pending and len(running) < workers \
                    and pending[0][0] <= now:
                _, _, index, attempt = heapq.heappop(pending)
                _spawn(index, attempt)
            if not running:
                # Only delayed retries left: sleep until the first is due.
                time.sleep(max(0.0, pending[0][0] - time.monotonic()))
                continue

            waits = []
            if timeout is not None:
                waits.extend(run.deadline - now for run in running)
            if pending and len(running) < workers:
                waits.append(pending[0][0] - now)
            wait_s = max(0.0, min(waits)) if waits else None
            wait_objs = ([run.conn for run in running]
                         + [run.proc.sentinel for run in running])
            multiprocessing.connection.wait(wait_objs, timeout=wait_s)

            now = time.monotonic()
            still: List[_Running] = []
            for run in running:
                finished = True
                try:
                    has_result = run.conn.poll()
                except (EOFError, OSError):
                    has_result = False
                if has_result:
                    try:
                        ok, payload = run.conn.recv()
                    except (EOFError, OSError):
                        ok, payload = False, JobFailure(
                            error="WorkerLost: result channel closed "
                                  "mid-send", kind=OUTCOME_LOST,
                            exitcode=run.proc.exitcode)
                    run.proc.join()
                    if ok:
                        records[run.index].ok = True
                        outcomes[run.index] = (True, payload)
                        _record_attempt(records[run.index], run.attempt,
                                        "pool", now - run.start, True,
                                        None)
                    else:
                        _fail(run, as_failure(payload), now)
                elif not run.proc.is_alive():
                    run.proc.join()
                    _fail(run, JobFailure(
                        error="WorkerLost: worker died with exit code "
                              "%s before returning a result"
                              % run.proc.exitcode,
                        kind=OUTCOME_LOST,
                        exitcode=run.proc.exitcode), now)
                elif run.deadline is not None and now >= run.deadline:
                    run.proc.kill()
                    run.proc.join()
                    _fail(run, JobFailure(
                        error="JobTimeout: exceeded the %.1fs per-job "
                              "deadline; worker killed" % timeout,
                        kind=OUTCOME_TIMEOUT,
                        exitcode=run.proc.exitcode), now)
                else:
                    finished = False
                    still.append(run)
                if finished:
                    try:
                        run.conn.close()
                    except OSError:
                        pass
            running = still
    finally:
        for run in running:
            try:
                run.proc.kill()
                run.proc.join()
                run.conn.close()
            except OSError:
                pass

    if degraded:
        # Degraded-serial phase after the pool settles: deadlines for
        # pool siblings stay enforced above; these attempts run where
        # workers cannot be lost (and fault injection never fires).
        _run_serial_attempts(jobs, worker, records, outcomes,
                             sorted(degraded), 0, max_attempts,
                             backoff_base, first_attempts=degraded)
