"""Cached simulation sweeps over the workload catalog.

Results for the default :class:`~repro.config.ProcessorConfig` are
memoised per (workload, mode) within the process, so the figure and
table generators — which share most of their sweeps — only pay for
each simulation once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.config import FusionMode, ProcessorConfig
from repro.core.results import SimResult
from repro.core.simulator import simulate
from repro.workloads import build_workload, workload_names

_CACHE: Dict[tuple, SimResult] = {}
_DEFAULT_CONFIG = ProcessorConfig()


def get_result(workload: str, mode: FusionMode,
               config: Optional[ProcessorConfig] = None) -> SimResult:
    """Simulate one (workload, mode) pair, memoised for the default config."""
    cacheable = config is None
    if cacheable:
        key = (workload, mode)
        hit = _CACHE.get(key)
        if hit is not None:
            return hit
    base = config or _DEFAULT_CONFIG
    result = simulate(build_workload(workload), base.with_mode(mode),
                      name=workload)
    if cacheable:
        _CACHE[(workload, mode)] = result
    return result


def run_suite(modes: Iterable[FusionMode],
              workloads: Optional[List[str]] = None,
              config: Optional[ProcessorConfig] = None,
              ) -> Dict[str, Dict[str, SimResult]]:
    """Sweep workloads x modes; returns results[workload][mode.value]."""
    names = workloads if workloads is not None else workload_names()
    return {
        name: {mode.value: get_result(name, mode, config) for mode in modes}
        for name in names
    }


def clear_cache() -> None:
    _CACHE.clear()
