"""Cached simulation sweeps over the workload catalog.

Thin module-level façade over :class:`~repro.experiments.engine.
SweepEngine`: results are memoised in-process *and* persisted to the
on-disk cache (``~/.cache/repro`` by default, see
:mod:`repro.experiments.cache`), keyed by workload name plus a stable
fingerprint of the full :class:`~repro.config.ProcessorConfig` — so
custom-config sweeps cache exactly like default-config ones, and the
figure/table generators (which share most of their sweeps) pay for
each simulation at most once *across* processes.

Environment knobs: ``REPRO_JOBS`` (worker processes, default 1),
``REPRO_CACHE_DIR`` (cache directory), ``REPRO_NO_CACHE`` (disable the
persistent layer), plus the fault-tolerance knobs consumed by
:mod:`repro.experiments.faults` (``REPRO_JOB_TIMEOUT``,
``REPRO_JOB_RETRIES``, ``REPRO_JOB_BACKOFF``, ``REPRO_FAULT_INJECT``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import FusionMode, ProcessorConfig
from repro.core.results import SimResult
from repro.experiments.cache import ResultCache
from repro.experiments.engine import SweepEngine
from repro.experiments.faults import SweepReport

#: Process-local memo shared by every engine this module builds, so
#: repeated figure/table calls in one process never re-read the disk.
_MEMO: Dict[str, SimResult] = {}

#: Execution report of the most recent sweep run through this façade
#: (set even when the sweep raises, so failure post-mortems can reach
#: the per-job attempt history).
_LAST_REPORT: Optional[SweepReport] = None


def _engine(jobs: Optional[int] = None,
            cache_dir: Optional[str] = None,
            use_cache: Optional[bool] = None,
            job_timeout: Optional[float] = None,
            retries: Optional[int] = None) -> SweepEngine:
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return SweepEngine(jobs=jobs, cache=cache, use_cache=use_cache,
                       memo=_MEMO, job_timeout=job_timeout,
                       retries=retries)


def last_sweep_report() -> Optional[SweepReport]:
    """The :class:`SweepReport` of the most recent sweep, if any.

    This is a *CLI-only convenience*: it reads a module-level global
    that every sweep run through this façade overwrites, so two sweeps
    interleaved in one process (the simulation service, or any
    threaded caller) clobber each other's reports here.  Concurrent
    callers must use :func:`run_suite_with_report` (or hold their own
    :class:`~repro.experiments.engine.SweepEngine` and read its
    ``last_report``), which threads the report through the return
    value instead of this global.
    """
    return _LAST_REPORT


def get_result(workload: str, mode: FusionMode,
               config: Optional[ProcessorConfig] = None,
               use_cache: Optional[bool] = None) -> SimResult:
    """Simulate one (workload, mode) pair through the cache stack."""
    return _engine(use_cache=use_cache).result(workload, mode, config)


def get_segmented_result(workload: str, mode: FusionMode,
                         segments: int,
                         warmup: Optional[int] = None,
                         config: Optional[ProcessorConfig] = None,
                         jobs: Optional[int] = None,
                         max_uops: Optional[int] = None,
                         scale_to: Optional[int] = None,
                         job_timeout: Optional[float] = None,
                         retries: Optional[int] = None) -> SimResult:
    """Segment-parallel exact simulation of one (workload, mode).

    Splices K independently-simulated segments back into one
    :class:`SimResult` — bit-exact against serial simulation when
    ``warmup`` is ``None`` (full-prefix warmup), within a warmup-length
    -dependent tolerance otherwise.  Spliced results stay in the
    in-process memo only; the persistent disk cache holds exclusively
    serial full-detail results.
    """
    global _LAST_REPORT
    engine = _engine(jobs=jobs, job_timeout=job_timeout, retries=retries)
    try:
        return engine.segmented(
            workload, mode, segments, warmup=warmup, config=config,
            max_uops=max_uops, scale_to=scale_to)
    finally:
        if engine.last_report is not None:
            _LAST_REPORT = engine.last_report


def run_suite_with_report(modes: Iterable[FusionMode],
                          workloads: Optional[List[str]] = None,
                          config: Optional[ProcessorConfig] = None,
                          jobs: Optional[int] = None,
                          cache_dir: Optional[str] = None,
                          use_cache: Optional[bool] = None,
                          job_timeout: Optional[float] = None,
                          retries: Optional[int] = None,
                          ) -> Tuple[Dict[str, Dict[str, SimResult]],
                                     Optional[SweepReport]]:
    """Like :func:`run_suite`, returning ``(results, report)``.

    ``report`` is this sweep's own :class:`SweepReport` (``None`` when
    every job was served from cache and no scheduler ran).  Unlike
    :func:`last_sweep_report`, the returned report cannot be clobbered
    by another sweep running concurrently in the same process — this
    is the entry point for the simulation service and any other
    multi-request caller.  The CLI-convenience global is still
    refreshed so ``--report-json`` flows keep working.
    """
    global _LAST_REPORT
    engine = _engine(jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
                     job_timeout=job_timeout, retries=retries)
    try:
        results = engine.sweep(modes, workloads=workloads, config=config)
    finally:
        if engine.last_report is not None:
            _LAST_REPORT = engine.last_report
    return results, engine.last_report


def run_suite(modes: Iterable[FusionMode],
              workloads: Optional[List[str]] = None,
              config: Optional[ProcessorConfig] = None,
              jobs: Optional[int] = None,
              cache_dir: Optional[str] = None,
              use_cache: Optional[bool] = None,
              job_timeout: Optional[float] = None,
              retries: Optional[int] = None,
              ) -> Dict[str, Dict[str, SimResult]]:
    """Sweep workloads x modes; returns results[workload][mode.value].

    ``jobs > 1`` fans cache misses across worker processes; the result
    is bit-identical to the sequential (default) run.  ``job_timeout``
    and ``retries`` feed the fault-tolerant scheduler (see
    :mod:`repro.experiments.faults`); the execution report of the run
    is retrievable afterwards via :func:`last_sweep_report` — or, for
    concurrent callers, returned directly by
    :func:`run_suite_with_report`.
    """
    results, _ = run_suite_with_report(
        modes, workloads=workloads, config=config, jobs=jobs,
        cache_dir=cache_dir, use_cache=use_cache,
        job_timeout=job_timeout, retries=retries)
    return results


def clear_cache(disk: bool = False) -> None:
    """Drop the in-process memo (and, with ``disk=True``, the
    persistent cache directory's entries too)."""
    _MEMO.clear()
    if disk:
        ResultCache().clear()
