"""Regeneration of the paper's tables (I, II, III)."""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.config import FusionMode, ProcessorConfig
from repro.core.storage import helios_storage_budget
from repro.experiments.figures import ExperimentResult, _census, _names
from repro.experiments.runner import get_result
from repro.fusion.idioms import IDIOMS
from repro.stats import amean


def table1(workloads: Optional[Sequence[str]] = None,
           config: Optional[ProcessorConfig] = None) -> ExperimentResult:
    """Table I: the RISC-V fusion idiom set, with the dynamic pair
    counts each idiom contributes across the workload suite (memory
    pairing idioms — the paper's bold rows — flagged).
    """
    counts = {idiom.name: 0 for idiom in IDIOMS}
    for name in _names(workloads):
        analysis = _census(name, config)
        for pair in analysis.memory_pairs + analysis.other_pairs:
            counts[pair.idiom] = counts.get(pair.idiom, 0) + 1
    rows = [[idiom.name, "yes" if idiom.is_memory else "no",
             idiom.description, counts.get(idiom.name, 0)]
            for idiom in IDIOMS]
    return ExperimentResult(
        name="Table I: RISC-V fusion idioms (memory pairing in bold)",
        headers=["idiom", "memory", "description", "dynamic pairs"],
        rows=rows,
        notes="memory pairing idioms are the paper's bold rows")


def table2(config: Optional[ProcessorConfig] = None) -> ExperimentResult:
    """Table II: the simulated processor plus the Helios storage budget."""
    config = config or ProcessorConfig()
    budget = helios_storage_budget(config)
    rows = [
        ["model", "Intel-Icelake-like out-of-order"],
        ["fetch/decode width", "%d / %d" % (config.fetch_width,
                                            config.decode_width)],
        ["rename/dispatch width", "%d / %d" % (config.rename_width,
                                               config.dispatch_width)],
        ["issue/commit width", "%d / %d" % (config.issue_width,
                                            config.commit_width)],
        ["ROB / IQ / AQ", "%d / %d / %d" % (config.rob_size, config.iq_size,
                                            config.aq_size)],
        ["LQ / SQ", "%d / %d" % (config.lq_size, config.sq_size)],
        ["int / fp PRF", "%d / %d" % (config.int_prf_size,
                                      config.fp_prf_size)],
        ["L1I", "%dKB %d-way" % (
            config.l1i.size_bytes // 1024, config.l1i.associativity)],
        ["L1D", "%dKB %d-way, %d cycles" % (
            config.l1d.size_bytes // 1024, config.l1d.associativity,
            config.l1d.latency)],
        ["L2", "%dKB %d-way, %d cycles" % (
            config.l2.size_bytes // 1024, config.l2.associativity,
            config.l2.latency)],
        ["L3", "%dKB %d-way, %d cycles" % (
            config.l3.size_bytes // 1024, config.l3.associativity,
            config.l3.latency)],
        ["DRAM latency", "%d cycles" % config.dram_latency],
        ["cache access granularity", "%d B" % config.cache_access_granularity],
        ["max fusion distance", "%d u-ops" % config.max_fusion_distance],
        ["NCSF nesting", str(config.ncsf_nesting)],
        ["UCH", "%d-entry loads + %d-entry stores (%d bits)" % (
            config.uch_load_entries, config.uch_store_entries,
            budget.items["uch"])],
        ["fusion predictor", "2 x %d-set %d-way + %d-entry selector "
                             "(%d bits)" % (
            config.fp_sets, config.fp_ways, config.fp_selector_entries,
            budget.items["fusion_predictor"])],
        ["NCSF pipeline storage", "%d bits (%.2f Kbit)" % (
            budget.ncsf_bits, budget.ncsf_bits / 1024)],
        ["flush pointers", "%d bits" % budget.flush_pointer_bits],
        ["grand total", "%.2f Kbit (%.2f KB)" % (
            budget.total_bits / 1024, budget.total_bits / 8192)],
    ]
    return ExperimentResult(
        name="Table II: simulated processor and Helios storage budget",
        headers=["parameter", "value"],
        rows=rows,
        notes="paper: 4.77 Kbit NCSF support + 72 Kbit predictor "
              "(+6336 flush-pointer bits, ~83 Kbit total)")


def table3(workloads: Optional[Sequence[str]] = None,
           config: Optional[ProcessorConfig] = None) -> ExperimentResult:
    """Table III: fusion predictor coverage, accuracy and MPKI.

    Coverage is only defined for workloads that *have* pairs needing a
    prediction (NCSF or CSF-DBR), and accuracy only for workloads the
    predictor actually fired on; others show "n/a" and are excluded
    from the respective average.
    """
    rows = []
    coverages = []
    accuracies = []
    for name in _names(workloads):
        result = get_result(name, FusionMode.HELIOS, config)
        if result.eligible_predictive_pairs:
            coverage = "%.2f" % result.fp_coverage_pct
            coverages.append(result.fp_coverage_pct)
        else:
            coverage = "n/a"
        accuracy_pct = result.fp_accuracy_pct
        if math.isnan(accuracy_pct):
            accuracy = "n/a"
        else:
            accuracy = accuracy_pct
            accuracies.append(accuracy_pct)
        rows.append([name, coverage, accuracy, "%.4f" % result.fp_mpki])
    summary = ["average",
               "%.2f" % amean(coverages),
               amean(accuracies),
               "%.4f" % amean(float(r[3]) for r in rows)]
    return ExperimentResult(
        name="Table III: Helios fusion predictor coverage/accuracy/MPKI",
        headers=["workload", "coverage%", "accuracy%", "MPKI"],
        rows=rows, summary=summary,
        notes="paper averages: coverage 68.2%, accuracy 99.7%, MPKI 0.1416; "
              "n/a = the workload has no pairs that need prediction")
