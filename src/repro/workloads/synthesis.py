"""Fully synthetic trace generation.

A second workload modality that manufactures a dynamic µ-op stream
directly — no assembly or interpretation — with closed-form control
over the properties the fusion machinery cares about: memory fraction,
pair density, pair distance, and base-register behaviour.  Used by
stress tests and predictor microbenchmarks where a *known* ground
truth matters more than realism.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.isa.instructions import Instruction, opclass_for
from repro.isa.program import CODE_BASE
from repro.isa.trace import MicroOp, Trace

_DATA_BASE = 0x50_0000


def synthesize_trace(length: int = 10_000,
                     memory_fraction: float = 0.35,
                     pair_fraction: float = 0.5,
                     pair_distance: int = 4,
                     footprint_kb: int = 64,
                     seed: int = 1,
                     name: str = "synthetic") -> Trace:
    """Generate a synthetic trace.

    ``pair_fraction`` of the memory µ-ops are emitted as same-line
    (head, tail) pairs separated by ``pair_distance`` filler ALU µ-ops;
    the rest access independent pseudo-random lines.
    """
    rng = random.Random(seed)
    mask = footprint_kb * 1024 - 1
    uops: List[MicroOp] = []
    static_cache = {}

    def static(mnemonic: str, rd: Optional[int], rs1: Optional[int],
               rs2: Optional[int], imm: int, pc_slot: int) -> Instruction:
        key = (mnemonic, rd, rs1, rs2, imm, pc_slot)
        inst = static_cache.get(key)
        if inst is None:
            inst = Instruction(
                mnemonic=mnemonic, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                opclass=opclass_for(mnemonic),
                mem_size=8 if mnemonic in ("ld", "sd") else 0,
                pc=CODE_BASE + 4 * pc_slot)
            static_cache[key] = inst
        return inst

    def emit(inst: Instruction, addr: int = 0) -> None:
        uops.append(MicroOp(len(uops), inst, addr=addr))

    def emit_alu(slot: int) -> None:
        rd = 5 + slot % 8
        emit(static("add", rd, rd, 6 + slot % 7, 0, slot))

    pc_slot = 0
    while len(uops) < length:
        pc_slot += 1
        if rng.random() < memory_fraction:
            line = (_DATA_BASE + (rng.randrange(mask) & ~63)) & ~63
            if rng.random() < pair_fraction:
                # A same-line pair separated by filler ALU µ-ops.
                emit(static("ld", 10, 11, None, 0, pc_slot), addr=line)
                for k in range(pair_distance - 1):
                    emit_alu(pc_slot * 31 + k)
                emit(static("ld", 12, 11, None, 8, pc_slot + 500),
                     addr=line + 8)
            else:
                emit(static("ld", 13, 14, None, 0, pc_slot + 1000),
                     addr=line + rng.randrange(0, 56, 8))
        else:
            emit_alu(pc_slot)
    return Trace(uops[:length], name=name)
