"""The workload catalog: one stand-in per application in the paper's
evaluation (Table III lists 32 workloads: 14 SPEC CPU 2017 sub-runs and
18 MiBench programs).

Each entry names the kernel archetype and parameters chosen to mimic
the fusion-relevant behaviour the paper reports for that application —
e.g. 657.xz_1 is store-queue bound (88 % of cycles stalled on a full
SQ in the paper's baseline), 605.mcf chases pointers with wild
data-dependent offsets (lowest predictor accuracy), bitcount and susan
are dominated by non-memory idioms (Figure 2's exceptions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import DEFAULT_MAX_UOPS as _DEFAULT_MAX_UOPS
from repro.isa.assembler import assemble
from repro.isa.interp import run_program
from repro.isa.program import Program
from repro.isa.trace import Trace
from repro.workloads import kernels


@dataclass(frozen=True)
class WorkloadSpec:
    """One catalog entry."""

    name: str
    suite: str                      # "SPEC" or "MiBench"
    builder: Callable[..., str]
    params: Tuple[Tuple[str, object], ...]
    description: str

    def source(self) -> str:
        return self.builder(**dict(self.params))


def _spec(name: str, suite: str, builder: Callable[..., str],
          description: str, **params) -> WorkloadSpec:
    return WorkloadSpec(name=name, suite=suite, builder=builder,
                        params=tuple(sorted(params.items())),
                        description=description)


CATALOG: Dict[str, WorkloadSpec] = {spec.name: spec for spec in [
    # ---- SPEC CPU 2017 ----------------------------------------------------
    _spec("600.perlbench_1", "SPEC", kernels.hash_probe,
          "symbol-table probing with paired field compares",
          iters=1300, buckets_kb=32, compare_fields=2, stores_per_hit=3,
          hit_mask=1),
    _spec("600.perlbench_2", "SPEC", kernels.hash_probe,
          "wider buckets, three-field compares",
          iters=1200, buckets_kb=64, compare_fields=3, stores_per_hit=3,
          hit_mask=1),
    _spec("600.perlbench_3", "SPEC", kernels.hash_probe,
          "small hot table, store-heavy hits",
          iters=1300, buckets_kb=16, compare_fields=2, stores_per_hit=4,
          hit_mask=1),
    _spec("602.gcc_1", "SPEC", kernels.streaming_stores,
          "IR emission: store bursts with input loads",
          iters=1200, stores_per_iter=4, loads_per_iter=2,
          footprint_kb=32, alu_ops=3),
    _spec("602.gcc_2", "SPEC", kernels.streaming_stores,
          "larger output window",
          iters=1100, stores_per_iter=5, loads_per_iter=2,
          footprint_kb=64, alu_ops=2),
    _spec("602.gcc_3", "SPEC", kernels.struct_walk,
          "tree-node field walks, mixed widths, same-line gaps",
          iters=1300, fields=3, field_gap=16, field_sizes=(8, 4),
          alu_between=1, footprint_kb=32),
    _spec("605.mcf", "SPEC", kernels.pointer_chase,
          "network-simplex pointer chasing, wild offsets",
          iters=1500, nodes=1024, wild_offset=True, alu_between=1),
    _spec("620.omnetpp", "SPEC", kernels.event_queue,
          "event-heap sift with different-base pairs",
          iters=1400, heap_kb=32),
    _spec("623.xalancbmk", "SPEC", kernels.struct_walk,
          "DOM node field walks (highest coverage)",
          iters=1400, fields=4, field_gap=8, alu_between=2,
          footprint_kb=16),
    _spec("631.deepsjeng", "SPEC", kernels.pointer_chase,
          "transposition-table probing, branchy",
          iters=1700, nodes=512, wild_offset=True, alu_between=2),
    _spec("641.leela", "SPEC", kernels.pointer_chase,
          "MCTS tree walks (lowest accuracy)",
          iters=1300, nodes=1024, wild_offset=True, alu_between=1,
          payload_loads=3),
    _spec("648.exchange2", "SPEC", kernels.block_transform,
          "sudoku block copies",
          iters=650, block_loads=8, block_stores=8, macs=4,
          footprint_kb=8),
    _spec("657.xz_1", "SPEC", kernels.streaming_stores,
          "match-table writes between coder updates: SQ-bound with "
          "non-consecutive store pairs (the paper's +70% case)",
          iters=900, stores_per_iter=6, loads_per_iter=1,
          footprint_kb=32, alu_ops=2, alu_between_stores=1),
    _spec("657.xz_2", "SPEC", kernels.bit_ops,
          "range-coder bit manipulation (Others-idiom heavy)",
          iters=550, idiom_groups=3, memory_ops=2),
    # ---- MiBench ------------------------------------------------------------
    _spec("adpcm", "MiBench", kernels.byte_scan,
          "16/32-bit sample stream (asymmetric contiguous pairs)",
          iters=1700, element_bytes=2, elements_per_iter=4,
          rotate_mix=True, mixed_sizes=True),
    _spec("basicmath", "MiBench", kernels.fp_butterfly,
          "double-precision kernels",
          iters=1000, footprint_kb=8),
    _spec("bitcount", "MiBench", kernels.bit_ops,
          "bit tricks, almost no memory (Others-dominant)",
          iters=600, idiom_groups=4, memory_ops=0),
    _spec("blowfish", "MiBench", kernels.table_mix,
          "4 S-box lookups per round (lowest coverage)",
          iters=500, table_kb=4, lookups=4, stores_per_iter=1),
    _spec("crc32", "MiBench", kernels.byte_scan,
          "byte-at-a-time table CRC",
          iters=1800, element_bytes=1, elements_per_iter=4),
    _spec("dijkstra", "MiBench", kernels.two_stream_walk,
          "adjacency and distance arrays in lockstep (DBR pairs)",
          iters=1800, gap=40, alu_between=3, footprint_kb=64),
    _spec("fft", "MiBench", kernels.fp_butterfly,
          "radix-2 butterflies over a larger window",
          iters=1000, footprint_kb=32),
    _spec("gsm_toast", "MiBench", kernels.block_transform,
          "LPC analysis blocks (MAC heavy, same-line load gaps)",
          iters=600, block_loads=8, block_stores=4, macs=8, load_gap=16),
    _spec("gsm_untoast", "MiBench", kernels.block_transform,
          "synthesis filter blocks",
          iters=650, block_loads=4, block_stores=6, macs=4),
    _spec("jpeg", "MiBench", kernels.block_transform,
          "8x8 DCT blocks",
          iters=620, block_loads=8, block_stores=4, macs=6),
    _spec("patricia", "MiBench", kernels.pointer_chase,
          "trie descent with small payloads",
          iters=1800, nodes=1024, wild_offset=False, alu_between=2),
    _spec("qsort", "MiBench", kernels.sort_partition,
          "partition compare-and-swap",
          iters=1600, footprint_kb=8),
    _spec("rijndael", "MiBench", kernels.table_mix,
          "T-table rounds with paired state writes",
          iters=520, table_kb=16, lookups=4, stores_per_iter=2),
    _spec("rsynth", "MiBench", kernels.streaming_stores,
          "synthesis buffers: store bursts behind loads",
          iters=1150, stores_per_iter=4, loads_per_iter=2,
          footprint_kb=16, alu_ops=4),
    _spec("sha", "MiBench", kernels.byte_scan,
          "message-schedule word loads with rotates",
          iters=1500, element_bytes=4, elements_per_iter=4,
          rotate_mix=True),
    _spec("stringsearch", "MiBench", kernels.byte_scan,
          "byte scanning, six probes per step",
          iters=1400, element_bytes=1, elements_per_iter=6),
    _spec("susan", "MiBench", kernels.bit_ops,
          "pixel mask arithmetic (Others-dominant, Figure 2 exception)",
          iters=550, idiom_groups=4, memory_ops=1),
    _spec("typeset", "MiBench", kernels.streaming_stores,
          "glyph placement: store bursts with position updates between "
          "them (+20% in the paper)",
          iters=1000, stores_per_iter=5, loads_per_iter=1,
          footprint_kb=64, stride=40, alu_ops=2, alu_between_stores=1),
]}


def workload_names(suite: str = None) -> List[str]:
    """All catalog names, optionally filtered by suite."""
    return [name for name, spec in CATALOG.items()
            if suite is None or spec.suite == suite]


def ensure_known(names: List[str]) -> List[str]:
    """Validate workload names against the catalog up front.

    Raises :class:`ValueError` naming every unknown workload and the
    available catalog, so a typo surfaces immediately instead of as an
    opaque ``KeyError`` deep inside ``build_workload``.
    """
    unknown = [name for name in names if name not in CATALOG]
    if unknown:
        raise ValueError(
            "unknown workload%s %s (see `repro workloads`); available: %s"
            % ("s" if len(unknown) > 1 else "",
               ", ".join(repr(name) for name in unknown),
               ", ".join(workload_names())))
    return list(names)


def build_program(name: str) -> Program:
    """Assemble the named workload's kernel."""
    spec = CATALOG[name]
    return assemble(spec.source(), name=name)


#: Default dynamic µ-op cap per workload trace — re-exported from
#: :mod:`repro.config`, the single authoritative definition shared by
#: every CLI entry point (run/bench/analyze/debug/profile).
DEFAULT_MAX_UOPS = _DEFAULT_MAX_UOPS

#: In-process trace memo, keyed by ``(name, max_uops)``.  One entry per
#: key regardless of whether the caller spelled the default cap out
#: (unlike the previous ``lru_cache``, which kept separate entries for
#: ``build_workload(n)`` and ``build_workload(n, 200_000)``).
_TRACE_MEMO: Dict[Tuple[str, int], Trace] = {}


def clear_trace_memo() -> None:
    """Drop the in-process trace memo (tests / memory pressure)."""
    _TRACE_MEMO.clear()


def build_workload(name: str, max_uops: int = DEFAULT_MAX_UOPS,
                   use_store: Optional[bool] = None) -> Trace:
    """The named workload's dynamic trace: capture once, replay many.

    Traces are deterministic, so each ``(name, max_uops)`` is cached at
    two levels: an in-process memo (every call in one process returns
    the *same* :class:`~repro.isa.trace.Trace` object), and — unless
    disabled via ``use_store=False`` or ``$REPRO_NO_TRACE_STORE`` — the
    persistent binary trace store
    (:mod:`repro.workloads.trace_store`), so other processes and later
    runs replay the serialized trace instead of re-interpreting the
    kernel.
    """
    key = (name, max_uops)
    trace = _TRACE_MEMO.get(key)
    if trace is not None:
        return trace

    # Imported lazily: trace_store imports this module for the catalog.
    from repro.workloads import trace_store as _store_mod
    enabled = (_store_mod.trace_store_enabled_by_default()
               if use_store is None else use_store)
    if enabled:
        store = _store_mod.TraceStore()
        salt = _store_mod.workload_salt(name)
        trace = store.get(name, max_uops, salt)
        if trace is None:
            trace = run_program(build_program(name), max_uops=max_uops)
            store.put(name, max_uops, trace, salt)
    else:
        trace = run_program(build_program(name), max_uops=max_uops)
    _TRACE_MEMO[key] = trace
    return trace
