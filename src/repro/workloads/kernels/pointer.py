"""Pointer-dominated kernels: chasing, hash probing, event queues,
table lookups.

These model the paper's irregular applications — 605.mcf, 620.omnetpp,
641.leela, patricia, rijndael — whose fusion pairs use unpredictable
or different base registers, giving the fusion predictor lower
coverage and accuracy (Table III's tail).
"""

from __future__ import annotations

from repro.workloads.kernels.memory import (
    BUFFER_BASE,
    SECOND_BASE,
    _loop,
    _wrap,
)

#: LCG multiplier/increment used for in-register pseudo-randomness.
#: The constants are hoisted into s6/s7 by the prologues below.
_LCG_MUL = 1103515245
_LCG_ADD = 12345

_LCG_PROLOGUE = ["li s6, %d" % _LCG_MUL, "li s7, %d" % _LCG_ADD]

#: One LCG step using the hoisted constants: s0 = s0 * s6 + s7.
_LCG_STEP = ["mul s0, s0, s6", "add s0, s0, s7"]


def pointer_chase(iters: int = 2500, node_bytes: int = 64,
                  nodes: int = 512, payload_loads: int = 2,
                  alu_between: int = 1, wild_offset: bool = False) -> str:
    """Chase a linked structure, loading payload fields per node.

    The next-pointer load serializes iterations (the 605.mcf shape);
    payload field loads form same-base pairs with small catalysts.
    With ``wild_offset`` the second payload access goes through a
    *data-dependent* offset that usually stays inside the node's line
    but sometimes escapes it — the source of fusion mispredictions
    (case 5) that drags accuracy down for mcf/leela-like codes.
    """
    mask = nodes * node_bytes - 1
    body = [
        # next = *(node); the node table is pre-linked pseudo-randomly.
        "ld a0, 0(a0)",
        "ld a2, 8(a0)",
    ]
    for extra in range(max(0, payload_loads - 2)):
        body.append("ld a%d, %d(a0)" % (4 + extra % 3, 32 + 8 * extra))
        body.append("add s2, s2, a%d" % (4 + extra % 3))
    for _ in range(alu_between):
        body.append("add s2, s2, a2")
    if wild_offset:
        # offset = *(node+16) & 0x78: usually inside the node's line.
        body += [
            "ld t0, 16(a0)",
            "andi t0, t0, 0x78",
            "add t1, a0, t0",
            "ld a3, 24(t1)",
        ]
    else:
        body.append("ld a3, 24(a0)")
    body.append("add s3, s3, a3")

    # Build the ring of nodes once: node[i].next = base + lcg(i) masked.
    init = _LCG_PROLOGUE + [
        "li t0, %d" % BUFFER_BASE,     # cursor
        "li t1, %d" % nodes,           # counter
        "li s0, 12345",
        "li t5, %d" % mask,
        "li t4, %d" % ~(node_bytes - 1),
        "init:",
    ]
    init += ["    %s" % line for line in _LCG_STEP]
    init += [
        "    srli t2, s0, 8",
        "    and t2, t2, t5",
        "    and t2, t2, t4",
        "    li t3, %d" % BUFFER_BASE,
        "    add t2, t2, t3",
        "    sd t2, 0(t0)",             # next pointer
        "    sd s0, 8(t0)",             # payload key
        "    sd t1, 24(t0)",            # payload val
        "    sd t1, 16(t0)",            # wild offset seed
        "    sd t1, 32(t0)",            # extra payload words
        "    sd s0, 40(t0)",
        "    addi t0, t0, %d" % node_bytes,
        "    addi t1, t1, -1",
        "    bnez t1, init",
        "    li a0, %d" % BUFFER_BASE,
    ]
    return _loop(body, iters, mask=mask, pre_lines=init)


def hash_probe(iters: int = 2500, buckets_kb: int = 32,
               stores_per_hit: int = 2, compare_fields: int = 2,
               hit_mask: int = 1) -> str:
    """Hash a key, probe a bucket, compare fields, store on a 'hit':
    the 600.perlbench / 602.gcc symbol-table shape.  Field loads pair
    within the bucket line; stores pair in the output record; the
    data-dependent hit branch adds realistic mispredictions.
    """
    body = list(_LCG_STEP)
    body += [
        "srli t0, s0, 8",
        "and t0, t0, s8",
        "andi t1, t0, 63",
        "sub t0, t0, t1",                 # align probe to a line
        "add t2, t0, s10",                # bucket address
    ]
    for f in range(compare_fields):
        body.append("ld a%d, %d(t2)" % (2 + f, 8 * f))
        body.append("xor s3, s3, a%d" % (2 + f))
    body += [
        "andi t3, s0, %d" % hit_mask,
        "beqz t3, miss",
    ]
    for s in range(stores_per_hit):
        body.append("sd s3, %d(a5)" % (8 * s))
    body.append("addi a5, a5, %d" % (8 * stores_per_hit))
    body += _wrap("a5", "s9", "s11")
    body.append("miss:")
    prologue = _LCG_PROLOGUE + ["li a5, %d" % SECOND_BASE, "li s0, 98765"]
    return _loop(body, iters, mask=buckets_kb * 1024 - 1,
                 second_mask=64 * 1024 - 1, extra_prologue=prologue)


def event_queue(iters: int = 2200, heap_kb: int = 16) -> str:
    """Binary-heap sift: parent and child loads through different base
    registers that often share a line near the heap top — the
    620.omnetpp event-scheduler shape.
    """
    body = list(_LCG_STEP)
    body += [
        "srli t0, s0, 10",
        "and t0, t0, s8",
        "andi t1, t0, 7",
        "sub t0, t0, t1",                 # 8-byte aligned index
        "add t2, t0, s10",                # parent pointer
        "addi t3, t2, 16",                # child pointer (separate base)
        "ld a2, 0(t2)",
        "add s2, s2, a2",
        "ld a3, 0(t3)",
        "add s3, s3, a3",
        "blt a2, a3, noswap",
        "sd a3, 0(t2)",
        "sd a2, 0(t3)",
        "noswap:",
    ]
    prologue = _LCG_PROLOGUE + ["li s0, 4242"]
    return _loop(body, iters, mask=heap_kb * 1024 - 1,
                 extra_prologue=prologue)


def table_mix(iters: int = 2500, table_kb: int = 64, lookups: int = 4,
              stores_per_iter: int = 2) -> str:
    """S-box style lookups at data-dependent lines (rijndael/blowfish):
    lookup pairs rarely share a line, so coverage is low, while the
    output stores still pair contiguously.
    """
    body = list(_LCG_STEP)
    for k in range(lookups):
        body += [
            "srli t0, s0, %d" % (4 + 6 * k),
            "and t0, t0, s8",
            "andi t1, t0, 7",
            "sub t0, t0, t1",
            "add t2, t0, s10",
            "ld a%d, 0(t2)" % (2 + k % 4),
            "xor s3, s3, a%d" % (2 + k % 4),
        ]
    for s in range(stores_per_iter):
        body.append("sd s3, %d(a5)" % (8 * s))
    body.append("addi a5, a5, %d" % (8 * stores_per_iter))
    body += _wrap("a5", "s9", "s11")
    prologue = _LCG_PROLOGUE + ["li a5, %d" % SECOND_BASE, "li s0, 31415"]
    return _loop(body, iters, mask=table_kb * 1024 - 1,
                 second_mask=32 * 1024 - 1, extra_prologue=prologue)
