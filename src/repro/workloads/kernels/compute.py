"""Compute-dominated kernels: bit manipulation, FP butterflies, byte
scanning, partition sorting.

These model the paper's applications where non-memory Table I idioms
dominate (bitcount, susan, 657.xz_2) or where memory pairs are
asymmetric byte/word accesses (stringsearch, crc32, sha, adpcm).
"""

from __future__ import annotations

from repro.workloads.kernels.memory import (
    BUFFER_BASE,
    SECOND_BASE,
    _LOAD_OP,
    _loop,
    _wrap,
)


def bit_ops(iters: int = 3000, idiom_groups: int = 3,
            memory_ops: int = 1) -> str:
    """Constant materialization, field extracts, wide multiplies and
    divides: saturated with 'Others' Table I idioms (lui+addi,
    slli+srli, mulh+mul, div+rem) and few memory pairs — the bitcount /
    susan profile (the paper's Figure 2 exceptions).

    Unlike the other kernels, the immediates here are intentionally
    *not* hoisted: materializing constants is the workload.
    """
    body = []
    for g in range(idiom_groups):
        body += [
            "lui t%d, %d" % (g % 3, 0x12340 + g),
            "addiw t%d, t%d, %d" % (g % 3, g % 3, 0x55 + g),
            "xor s2, s2, t%d" % (g % 3),
            "slli t3, s2, 32",
            "srli t3, t3, 32",
            "add s3, s3, t3",
            "mulh t4, s2, s3",
            "mul t5, s2, s3",
            "xor s2, s2, t4",
            "add s3, s3, t5",
        ]
    body += [
        "ori t0, s3, 1",
        "div t1, s2, t0",
        "rem t2, s2, t0",
        "add s3, s3, t1",
        "xor s2, s2, t2",
    ]
    for m in range(memory_ops):
        body.append("ld a2, %d(a0)" % (8 * m))
        body.append("add s2, s2, a2")
    body.append("addi a0, a0, 8")
    body += _wrap("a0", "s8", "s10")
    return _loop(body, iters, mask=8 * 1024 - 1)


def fp_butterfly(iters: int = 1800, footprint_kb: int = 16) -> str:
    """FFT-style butterflies: paired fld/fsd around FP multiply-adds
    (basicmath / fft stand-in).
    """
    body = [
        "fld f1, 0(a0)",
        "fld f2, 8(a0)",
        "fld f3, 64(a0)",
        "fld f4, 72(a0)",
        "fadd.d f5, f1, f3",
        "fsub.d f6, f1, f3",
        "fmul.d f7, f2, f4",
        "fadd.d f8, f5, f7",
        "fsd f8, 0(a5)",
        "fsd f6, 8(a5)",
        "addi a0, a0, 16",
    ]
    body += _wrap("a0", "s8", "s10")
    body.append("addi a5, a5, 16")
    body += _wrap("a5", "s8", "s11")
    prologue = ["li a5, %d" % SECOND_BASE]
    return _loop(body, iters, mask=footprint_kb * 1024 - 1,
                 extra_prologue=prologue)


def byte_scan(iters: int = 3500, element_bytes: int = 1,
              elements_per_iter: int = 4, footprint_kb: int = 8,
              rotate_mix: bool = False, mixed_sizes: bool = False) -> str:
    """Sequential sub-word scanning (stringsearch / crc32 / sha):
    adjacent narrow loads form contiguous, often *asymmetric* pairs.
    ``mixed_sizes`` alternates widths so even the static window sees
    asymmetric contiguous pairs.
    """
    body = []
    offset = 0
    for e in range(elements_per_iter):
        size = element_bytes
        if mixed_sizes and e % 2 == 1:
            size = min(8, element_bytes * 2)
        body.append("%s a%d, %d(a0)" % (_LOAD_OP[size], 2 + e % 4, offset))
        body.append("add s2, s2, a%d" % (2 + e % 4))
        offset += size
    if rotate_mix:
        body += [
            "slli t0, s2, 7",
            "srli t1, s2, 57",
            "or s2, t0, t1",
            "xor s3, s3, s2",
        ]
    body.append("addi a0, a0, %d" % offset)
    body += _wrap("a0", "s8", "s10")
    return _loop(body, iters, mask=footprint_kb * 1024 - 1)


def sort_partition(iters: int = 2200, footprint_kb: int = 16) -> str:
    """Partition step of quicksort: two loads, a data-dependent
    compare-branch (hard to predict), and conditional swap stores.
    """
    body = [
        "ld a2, 0(a0)",
        "ld a3, 8(a0)",
        "blt a2, a3, ordered",
        "sd a3, 0(a0)",
        "sd a2, 8(a0)",
        "ordered:",
        "add s2, s2, a2",
        "addi a0, a0, 16",
    ]
    body += _wrap("a0", "s8", "s10")
    # Pre-fill the buffer with pseudo-random values so the branch is
    # genuinely data-dependent.
    fill = [
        "li t0, %d" % BUFFER_BASE,
        "li t1, %d" % (footprint_kb * 128),  # qwords
        "li s0, 777",
        "li t3, 1103515245",
        "fill:",
        "    mul s0, s0, t3",
        "    addi s0, s0, 12345",
        "    sd s0, 0(t0)",
        "    addi t0, t0, 8",
        "    addi t1, t1, -1",
        "    bnez t1, fill",
    ]
    return _loop(body, iters, mask=footprint_kb * 1024 - 1, pre_lines=fill)
