"""Parameterized assembly kernel builders.

Every builder returns assembly text for :func:`repro.isa.assemble`.
They are grouped by the dominant behaviour they model:

* :mod:`repro.workloads.kernels.memory` — streaming stores, struct
  walks, two-stream walks, block transforms (SQ pressure, CSF/NCSF
  memory pairs).
* :mod:`repro.workloads.kernels.pointer` — pointer chasing, hash
  probing, event queues (irregular bases, DBR pairs, low coverage).
* :mod:`repro.workloads.kernels.compute` — bit manipulation, FP
  butterflies, byte scanning, sorting (non-memory idioms, asymmetric
  pairs, branchy control).
"""

from repro.workloads.kernels.compute import (
    bit_ops,
    byte_scan,
    fp_butterfly,
    sort_partition,
)
from repro.workloads.kernels.memory import (
    block_transform,
    streaming_stores,
    struct_walk,
    two_stream_walk,
)
from repro.workloads.kernels.pointer import (
    event_queue,
    hash_probe,
    pointer_chase,
    table_mix,
)

__all__ = [
    "bit_ops",
    "block_transform",
    "byte_scan",
    "event_queue",
    "fp_butterfly",
    "hash_probe",
    "pointer_chase",
    "sort_partition",
    "streaming_stores",
    "struct_walk",
    "table_mix",
    "two_stream_walk",
]
