"""Memory-dominated kernels: streaming stores, struct walks, block
transforms.

These model the paper's store-pressure applications (657.xz, typeset,
602.gcc) and the struct/record processing loops where non-consecutive
load pairs arise naturally (600.perlbench, 623.xalancbmk).

Register conventions shared by every kernel (set up by :func:`_loop`):

* ``s10`` — primary buffer base, ``s11`` — secondary buffer base;
* ``s8`` / ``s9`` — primary/secondary footprint masks;
* ``a1`` — loop trip counter; ``s2``/``s3`` — accumulators.

Constants are hoisted into these registers so the loop bodies are not
flooded with ``lui+addi`` pairs, which would distort the Table I idiom
census (the paper's 'Others' average is just 1.1 % of dynamic µ-ops).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

BUFFER_BASE = 0x20_0000
SECOND_BASE = 0x40_0000


def _footprint_mask(footprint_kb: int) -> int:
    """AND-mask that wraps a byte offset within the footprint."""
    size = footprint_kb * 1024
    if size & (size - 1):
        raise ValueError("footprint must be a power of two (KiB)")
    return size - 1


def _wrap(reg: str, mask_reg: str, base_reg: str) -> List[str]:
    """Wrap pointer ``reg`` into its buffer (mask then rebase)."""
    return [
        "and %s, %s, %s" % (reg, reg, mask_reg),
        "add %s, %s, %s" % (reg, reg, base_reg),
    ]


_LOAD_OP = {1: "lbu", 2: "lhu", 4: "lwu", 8: "ld"}
_STORE_OP = {1: "sb", 2: "sh", 4: "sw", 8: "sd"}


def streaming_stores(iters: int = 2500, stores_per_iter: int = 6,
                     loads_per_iter: int = 1, footprint_kb: int = 32,
                     stride: int = 48, alu_ops: int = 2,
                     alu_between_stores: int = 0) -> str:
    """Bursts of stores to a small output buffer plus long-latency
    input loads: the 657.xz / typeset pattern whose dispatch stalls are
    dominated by a full store queue.

    Store pairs halve SQ occupancy and drain bandwidth, which is where
    the paper's largest uplifts come from.  With ``alu_between_stores``
    the stores are *non-consecutive* (ALU work between them), so only
    predictive NCSF — not the static decode window — can pair them:
    the paper's 657.xz_1 story (27.6 % additional NCSF pairs).
    """
    body = ["ld a3, 0(a2)"] * loads_per_iter
    for i in range(stores_per_iter):
        reg = "a3" if i % 2 == 0 else "s2"
        body.append("sd %s, %d(a0)" % (reg, 8 * i))
        if alu_between_stores and i + 1 < stores_per_iter:
            for k in range(alu_between_stores):
                body.append("xor t%d, a3, a1" % (k % 3))
    body.extend("add s2, s2, a3" for _ in range(alu_ops))
    body.append("addi a0, a0, %d" % stride)
    body += _wrap("a0", "s8", "s10")
    body += [
        # Pseudo-random far input pointer (streams through a large region).
        "slli t2, a1, 6",
        "add a2, a2, t2",
    ]
    body += _wrap("a2", "s9", "s11")
    return _loop(body, iters, mask=_footprint_mask(footprint_kb),
                 second_mask=0xFFFFF)


def struct_walk(iters: int = 3000, fields: int = 4, field_gap: int = 8,
                alu_between: int = 2, footprint_kb: int = 16,
                store_result: bool = True, stride: int = None,
                field_sizes: Optional[Sequence[int]] = None) -> str:
    """Walk an array of records, loading several fields with ALU work
    interleaved: the canonical non-consecutive load-pair source (the
    paper's Figure 1 shape).

    ``alu_between`` controls the catalyst size (0 gives consecutive
    pairs); ``field_gap`` > the access size leaves same-line gaps;
    ``field_sizes`` mixes access widths for asymmetric pairs.
    """
    stride = stride if stride is not None else fields * field_gap
    sizes = list(field_sizes) if field_sizes else [8]
    body = []
    for f in range(fields):
        size = sizes[f % len(sizes)]
        body.append("%s a%d, %d(a0)" % (_LOAD_OP[size], 2 + f,
                                        f * field_gap))
        for k in range(alu_between):
            body.append("add s%d, s%d, a%d" % (2 + k % 2, 2 + k % 2, 2 + f))
    if store_result:
        # Results go to a separate output array (a6): records are
        # read-only, as in tree/DOM walks.
        body.append("sd s2, 0(a6)")
        body.append("sd s3, 8(a6)")
    body.append("addi a0, a0, %d" % stride)
    body += _wrap("a0", "s8", "s10")
    if store_result:
        body.append("addi a6, a6, 16")
        body += _wrap("a6", "s9", "s11")
    prologue = ["li a6, %d" % SECOND_BASE] if store_result else None
    return _loop(body, iters, mask=_footprint_mask(footprint_kb),
                 second_mask=32 * 1024 - 1, extra_prologue=prologue)


def two_stream_walk(iters: int = 3000, gap: int = 24,
                    alu_between: int = 3, footprint_kb: int = 16) -> str:
    """Walk two interleaved streams through *different base registers*
    that land in the same cache line: the DBR pair source that static
    fusion can never see (Section III-D).
    """
    body = [
        "ld a2, 0(a0)",
    ]
    body.extend("add s2, s2, a2" for _ in range(alu_between))
    body += [
        "ld a3, 0(a4)",            # a4 = a0 + gap: same line, different base
        "add s3, s3, a3",
        "addi a0, a0, 32",
    ]
    body += _wrap("a0", "s8", "s10")
    body.append("addi a4, a0, %d" % gap)
    prologue = ["addi a4, a0, %d" % gap]
    return _loop(body, iters, mask=_footprint_mask(footprint_kb),
                 extra_prologue=prologue)


def block_transform(iters: int = 1200, block_loads: int = 8,
                    block_stores: int = 4, footprint_kb: int = 8,
                    macs: int = 6, load_gap: int = 8) -> str:
    """Load a small block, multiply-accumulate, store a transformed
    block: the jpeg / gsm inner-loop shape.  Dense contiguous pairs for
    both loads and stores; a ``load_gap`` above 8 bytes produces
    same-line (non-contiguous) neighbours instead.
    """
    body = []
    for i in range(block_loads):
        body.append("ld a%d, %d(a0)" % (2 + i % 6, load_gap * i))
    for i in range(macs):
        body.append("mul t%d, a%d, a%d" % (i % 3, 2 + i % 6, 2 + (i + 1) % 6))
        body.append("add s2, s2, t%d" % (i % 3))
    for i in range(block_stores):
        body.append("sd s2, %d(a5)" % (8 * i))
    body.append("addi a0, a0, %d" % (load_gap * block_loads))
    body += _wrap("a0", "s8", "s10")
    body.append("addi a5, a5, %d" % (8 * block_stores))
    body += _wrap("a5", "s8", "s11")
    prologue = ["li a5, %d" % SECOND_BASE]
    return _loop(body, iters, mask=_footprint_mask(footprint_kb),
                 extra_prologue=prologue)


def _loop(body: Sequence[str], iters: int, mask: int,
          second_mask: Optional[int] = None,
          extra_prologue: Optional[Sequence[str]] = None,
          pre_lines: Optional[Sequence[str]] = None) -> str:
    """Wrap a loop body with the standard prologue and trip counter."""
    prologue = [
        "li a0, %d" % BUFFER_BASE,
        "li a2, %d" % SECOND_BASE,
        "li a1, %d" % iters,
        "li s2, 0",
        "li s3, 0",
        "li s8, %d" % mask,
        "li s9, %d" % (second_mask if second_mask is not None else mask),
        "li s10, %d" % BUFFER_BASE,
        "li s11, %d" % SECOND_BASE,
    ]
    lines = list(pre_lines or ())
    lines += prologue
    lines.extend(extra_prologue or ())
    lines.append("loop:")
    lines.extend("    %s" % inst for inst in body)
    lines += [
        "    addi a1, a1, -1",
        "    bnez a1, loop",
        "    ecall",
    ]
    return "\n".join(lines)
