"""Persistent per-workload trace store: capture once, replay many.

The paper's methodology is trace-driven — Spike's committed µ-op
stream is captured once and injected into the timing model under every
configuration.  This module makes that capture/replay split concrete
for the synthetic workload catalog: the first time a workload is
built, its functional trace is serialized (compact binary format, see
:mod:`repro.isa.trace_io`) into a store directory; every later build —
in this process, another process, or another run entirely — replays
the stored trace instead of re-running the interpreter.

Entries are keyed by ``(workload name, max_uops, salt)`` where the
salt hashes the workload's generated kernel source together with the
capture and binary-format versions — so editing a kernel, changing its
catalog parameters, or bumping the interpreter semantics all invalidate
exactly the affected entries.  The store is safe under concurrent
readers and writers (the parallel sweep's worker processes): a
corrupted or truncated file is treated as a miss and quarantined —
never blindly unlinked, which could race a concurrent ``put()`` and
destroy a freshly-captured valid trace — orphaned ``*.tmp`` files from
killed writers are swept age-gated at init, and a full or read-only
store directory degrades the store to capture-per-process mode with a
one-time warning instead of aborting the run (see
:mod:`repro.core.fsutil`).

Environment knobs:

* ``REPRO_TRACE_DIR`` — store directory (default:
  ``$REPRO_CACHE_DIR/traces``, else ``$XDG_CACHE_HOME/repro/traces``,
  else ``~/.cache/repro/traces``).
* ``REPRO_NO_TRACE_STORE`` — set (to anything non-empty) to disable
  the persistent layer; traces are then interpreted per process and
  shared only through the in-process memo.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core import fsutil
from repro.isa.trace import Trace
from repro.isa.trace_io import (
    TRACE_BINARY_VERSION,
    TraceFormatError,
    load_trace_binary,
    load_trace_binary_segment,
    save_trace_binary,
)
from repro.workloads.catalog import CATALOG

#: Environment variable overriding the default store directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Set (to anything non-empty) to disable the persistent trace store.
NO_TRACE_STORE_ENV = "REPRO_NO_TRACE_STORE"

#: Bump when the functional interpreter's observable semantics change
#: (captured traces would differ); stored traces then stop matching.
CAPTURE_VERSION = 1


def default_trace_dir() -> Path:
    """``$REPRO_TRACE_DIR``, else a ``traces/`` subdirectory of the
    result-cache directory resolution (``$REPRO_CACHE_DIR``,
    ``$XDG_CACHE_HOME/repro``, ``~/.cache/repro``)."""
    env = os.environ.get(TRACE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    cache = os.environ.get("REPRO_CACHE_DIR")
    if cache:
        return Path(cache).expanduser() / "traces"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "traces"


def trace_store_enabled_by_default() -> bool:
    return not os.environ.get(NO_TRACE_STORE_ENV)


_SALT_MEMO: Dict[str, str] = {}


def workload_salt(name: str) -> str:
    """Content hash invalidating stored traces when capture changes.

    Hashes the workload's *generated kernel source* (covering both the
    kernel generator code and the catalog parameters feeding it) plus
    the binary-format and interpreter-capture versions.
    """
    salt = _SALT_MEMO.get(name)
    if salt is None:
        payload = "%s\x00binary=%d\x00capture=%d" % (
            CATALOG[name].source(), TRACE_BINARY_VERSION, CAPTURE_VERSION)
        salt = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
        _SALT_MEMO[name] = salt
    return salt


class TraceStore:
    """One directory of binary-serialized workload traces."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_trace_dir()
        #: Flipped by the first environmental write failure (ENOSPC,
        #: read-only dir, permissions): later ``put`` calls become
        #: no-ops instead of re-raising on every capture of a sweep.
        self.degraded = False
        # Reclaim temporaries orphaned by writers killed mid-put.
        fsutil.sweep_stale_tmps(self.root)

    def path_for(self, name: str, max_uops: int, salt: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "._-" else "_"
                       for c in name)
        return self.root / ("%s-u%d-%s.trc" % (safe, max_uops, salt))

    # ------------------------------------------------------------- access --

    def get(self, name: str, max_uops: int,
            salt: Optional[str] = None) -> Optional[Trace]:
        """The stored trace, or ``None`` on miss / stale salt /
        corruption (corrupt files are quarantined so the rebuild
        persists and the evidence survives)."""
        path = self.path_for(name, max_uops,
                             salt if salt is not None else workload_salt(name))
        # Pin the identity of the file before reading it, so a corrupt
        # parse quarantines *that* file and never one a concurrent
        # put() replaced it with.
        seen = fsutil.stat_or_none(path)
        try:
            return load_trace_binary(str(path))
        except FileNotFoundError:
            return None
        except TraceFormatError:
            fsutil.quarantine_if_unchanged(path, seen)
            return None
        except OSError:
            # Environmental read failure: miss without condemning the
            # entry — it may be perfectly valid.
            return None

    def get_segment(self, name: str, max_uops: int, start: int,
                    count: int,
                    salt: Optional[str] = None) -> Optional[Trace]:
        """µ-ops ``[start, start + count)`` of a stored trace, as a
        standalone renumbered :class:`Trace` — or ``None`` on miss.

        This is the segment-parallel workers' read path: each worker
        materialises only its own window (plus warmup/drain slack)
        instead of the full multi-million-µop trace (see
        :func:`repro.isa.trace_io.load_trace_binary_segment`).  Corrupt
        files are quarantined, like :meth:`get`; an out-of-range window
        on a *valid* file is the caller's planning bug and raises.
        """
        path = self.path_for(name, max_uops,
                             salt if salt is not None else workload_salt(name))
        seen = fsutil.stat_or_none(path)
        try:
            return load_trace_binary_segment(str(path), start, count)
        except FileNotFoundError:
            return None
        except TraceFormatError:
            fsutil.quarantine_if_unchanged(path, seen)
            return None
        except OSError:
            return None

    def put(self, name: str, max_uops: int, trace: Trace,
            salt: Optional[str] = None) -> Optional[Path]:
        """Atomically persist one trace (tmp file + rename).

        Returns the stored path, or ``None`` when an environmental
        failure (disk full, read-only or unwritable store directory)
        degraded the store to capture-per-process mode — with a
        one-time warning instead of aborting the sweep.
        """
        if self.degraded:
            return None
        path = self.path_for(name, max_uops,
                             salt if salt is not None else workload_salt(name))
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        except OSError as exc:
            self._degrade(exc)
            return None
        try:
            with os.fdopen(fd, "wb") as handle:
                save_trace_binary(trace, handle)
            os.replace(tmp, str(path))
        except OSError as exc:
            fsutil.unlink_quiet(tmp)
            self._degrade(exc)
            return None
        except BaseException:
            # Programming errors and interrupts still propagate — only
            # *environmental* failures degrade.
            fsutil.unlink_quiet(tmp)
            raise
        return path

    def _degrade(self, exc: BaseException) -> None:
        if not self.degraded:
            self.degraded = True
            fsutil.warn_store_degraded("trace store", self.root, exc)

    # --------------------------------------------------------- inspection --

    def entries(self) -> List[Dict]:
        """Metadata of every stored trace (for ``repro trace``).

        Robust against concurrent mutation: a file deleted by another
        process between the directory listing and the ``stat``/read is
        skipped, not a crash.
        """
        found = []
        for path in sorted(self.root.glob("*.trc")):
            st = fsutil.stat_or_none(path)
            if st is None:
                continue  # deleted by a concurrent clear()/put()
            info: Dict = {"file": path.name, "bytes": st.st_size}
            try:
                trace = load_trace_binary(str(path))
                info["name"] = trace.name
                info["uops"] = len(trace)
            except FileNotFoundError:
                continue  # vanished between stat and open
            except (TraceFormatError, OSError):
                info["name"] = "?"
                info["uops"] = 0
                info["corrupt"] = True
            found.append(info)
        return found

    def size_bytes(self) -> int:
        return fsutil.sum_file_sizes(self.root.glob("*.trc"))

    def orphan_tmps(self) -> List[Path]:
        """Leftover ``mkstemp`` files from writers that died mid-put."""
        return fsutil.tmp_files(self.root)

    def quarantined(self) -> List[Path]:
        """Entries moved aside as corrupt (``*.corrupt``)."""
        return fsutil.quarantined_files(self.root)

    def clear(self) -> int:
        """Delete every stored trace — including orphaned temporaries
        and quarantined corrupt files; returns how many were removed."""
        removed = 0
        for pattern in ("*.trc", "*.tmp", "*" + fsutil.QUARANTINE_SUFFIX):
            for path in self.root.glob(pattern):
                if fsutil.unlink_quiet(path):
                    removed += 1
        return removed
