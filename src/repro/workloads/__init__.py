"""Workload catalog: stand-ins for the paper's SPEC CPU 2017 and
MiBench applications.

Each named workload is a small assembly kernel crafted to exhibit the
fusion-relevant characteristics the paper reports for the application
it stands in for (memory-pair density, non-consecutive pair distance,
base-register behaviour, store-queue pressure, branchiness).  See
DESIGN.md §2 for the substitution rationale.
"""

from repro.workloads.catalog import (
    CATALOG,
    DEFAULT_MAX_UOPS,
    WorkloadSpec,
    build_program,
    build_workload,
    clear_trace_memo,
    ensure_known,
    workload_names,
)
from repro.workloads.synthesis import synthesize_trace
from repro.workloads.trace_store import (
    NO_TRACE_STORE_ENV,
    TRACE_DIR_ENV,
    TraceStore,
    default_trace_dir,
    trace_store_enabled_by_default,
    workload_salt,
)

__all__ = [
    "CATALOG",
    "DEFAULT_MAX_UOPS",
    "NO_TRACE_STORE_ENV",
    "TRACE_DIR_ENV",
    "TraceStore",
    "WorkloadSpec",
    "build_program",
    "build_workload",
    "clear_trace_memo",
    "default_trace_dir",
    "ensure_known",
    "synthesize_trace",
    "trace_store_enabled_by_default",
    "workload_names",
    "workload_salt",
]
