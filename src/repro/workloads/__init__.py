"""Workload catalog: stand-ins for the paper's SPEC CPU 2017 and
MiBench applications.

Each named workload is a small assembly kernel crafted to exhibit the
fusion-relevant characteristics the paper reports for the application
it stands in for (memory-pair density, non-consecutive pair distance,
base-register behaviour, store-queue pressure, branchiness).  See
DESIGN.md §2 for the substitution rationale.
"""

from repro.workloads.catalog import (
    CATALOG,
    WorkloadSpec,
    build_program,
    build_workload,
    ensure_known,
    workload_names,
)
from repro.workloads.synthesis import synthesize_trace

__all__ = [
    "CATALOG",
    "WorkloadSpec",
    "build_program",
    "build_workload",
    "ensure_known",
    "synthesize_trace",
    "workload_names",
]
