"""Command-line interface.

::

    python -m repro workloads                 # list the catalog
    python -m repro simulate dijkstra         # all six configurations
    python -m repro simulate 657.xz_1 --mode Helios --fp-kind tage
    python -m repro experiment fig10 --workloads 657.xz_1,605.mcf
    python -m repro storage                   # Table II budget
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.config import FusionMode, ProcessorConfig
from repro.core.simulator import ipc_uplift, simulate, simulate_modes
from repro.core.storage import helios_storage_budget
from repro.experiments import (
    figure2, figure3, figure4, figure5, figure8, figure9, figure10,
    table1, table2, table3,
)
from repro.workloads import CATALOG, build_workload, workload_names

_EXPERIMENTS = {
    "fig2": figure2, "fig3": figure3, "fig4": figure4, "fig5": figure5,
    "fig8": figure8, "fig9": figure9, "fig10": figure10,
    "table1": table1, "table3": table3,
}

_MODES = {mode.value.lower(): mode for mode in FusionMode}


def _parse_mode(text: str) -> FusionMode:
    try:
        return _MODES[text.lower()]
    except KeyError:
        raise SystemExit("unknown mode %r; choose from: %s"
                         % (text, ", ".join(m.value for m in FusionMode)))


def _workload_list(arg: Optional[str]) -> Optional[List[str]]:
    if not arg:
        return None
    names = [n.strip() for n in arg.split(",") if n.strip()]
    for name in names:
        if name not in CATALOG:
            raise SystemExit("unknown workload %r (see `repro workloads`)"
                             % name)
    return names


def _cmd_workloads(_args) -> int:
    print("%-17s %-8s %7s  %s" % ("name", "suite", "u-ops", "description"))
    for name in workload_names():
        spec = CATALOG[name]
        print("%-17s %-8s %7d  %s" % (name, spec.suite,
                                      len(build_workload(name)),
                                      spec.description))
    return 0


def _config_from(args) -> ProcessorConfig:
    config = ProcessorConfig()
    if getattr(args, "fp_kind", None):
        config = dataclasses.replace(config, fp_kind=args.fp_kind)
    return config


def _cmd_simulate(args) -> int:
    if args.workload not in CATALOG:
        raise SystemExit("unknown workload %r (see `repro workloads`)"
                         % args.workload)
    trace = build_workload(args.workload)
    config = _config_from(args)
    if args.mode:
        result = simulate(trace, config.with_mode(_parse_mode(args.mode)),
                          name=args.workload)
        print(result.summary())
        return 0
    results = simulate_modes(trace, base_config=config, name=args.workload)
    uplift = ipc_uplift(results)
    print("%-15s %8s %9s" % ("configuration", "IPC", "vs base"))
    for name, result in results.items():
        print("%-15s %8.3f %+8.1f%%"
              % (name, result.ipc, 100 * (uplift[name] - 1)))
    return 0


def _cmd_experiment(args) -> int:
    if args.name == "table2":
        print(table2().render())
        return 0
    runner = _EXPERIMENTS.get(args.name)
    if runner is None:
        raise SystemExit("unknown experiment %r; choose from: %s, table2"
                         % (args.name, ", ".join(sorted(_EXPERIMENTS))))
    print(runner(_workload_list(args.workloads)).render())
    return 0


def _cmd_storage(_args) -> int:
    print(helios_storage_budget().report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Helios instruction-fusion reproduction (MICRO 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload catalog") \
        .set_defaults(func=_cmd_workloads)

    sim = sub.add_parser("simulate", help="simulate one workload")
    sim.add_argument("workload")
    sim.add_argument("--mode", help="one configuration (default: all six)")
    sim.add_argument("--fp-kind", choices=["tournament", "tage", "local"],
                     help="fusion predictor organization for Helios")
    sim.set_defaults(func=_cmd_simulate)

    exp = sub.add_parser("experiment",
                         help="regenerate a paper table/figure")
    exp.add_argument("name", help="fig2|fig3|fig4|fig5|fig8|fig9|fig10|"
                                  "table1|table2|table3")
    exp.add_argument("--workloads",
                     help="comma-separated subset (default: all 32)")
    exp.set_defaults(func=_cmd_experiment)

    sub.add_parser("storage", help="print the Table II storage budget") \
        .set_defaults(func=_cmd_storage)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`: exit quietly like other CLIs.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
