"""Command-line interface.

::

    python -m repro workloads                 # list the catalog
    python -m repro simulate dijkstra         # all six configurations
    python -m repro simulate 657.xz_1 --mode Helios --fp-kind tage
    python -m repro experiment fig10 --workloads 657.xz_1,605.mcf --jobs 4
    python -m repro experiment fig9 --jobs 8 --job-timeout 120 \\
        --report-json sweep.json              # fault-tolerant sweep
    python -m repro sweep-report sweep.json   # render execution report
    python -m repro cache                     # inspect the result cache
    python -m repro cache clear               # drop every cached result
    python -m repro trace                     # inspect the trace store
    python -m repro trace export dijkstra     # trace -> portable JSON-lines
    python -m repro bench --quick             # wall-clock perf harness
    python -m repro profile 605.mcf --mode Helios --top 20
    python -m repro debug 657.xz_1 --events-out xz.trace.json
    python -m repro analyze dijkstra          # legality + differential
    python -m repro analyze 657.xz_1 --mode Helios --explain 0x1a4
    python -m repro static all --json static-report.json
    python -m repro static dijkstra --explain 0x10008,0x1000c
    python -m repro storage                   # Table II budget
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.analysis.static.candidates import DEFAULT_PATH_BUDGET
from repro.config import DEFAULT_MAX_UOPS, FusionMode, ProcessorConfig
from repro.core.simulator import ipc_uplift, simulate, simulate_modes
from repro.core.storage import helios_storage_budget
from repro.experiments import (
    ResultCache, SweepJobError, SweepReport, cpi_accounting,
    figure2, figure3, figure4, figure5, figure8, figure9, figure10,
    last_sweep_report, legality_census, run_suite,
    table1, table2, table3,
)
from repro.sampling import DEFAULT_WINDOWS as _SAMPLE_DEFAULT_WINDOWS
from repro.workloads import (
    CATALOG, TraceStore, build_workload, ensure_known, workload_names,
)

_EXPERIMENTS = {
    "fig2": figure2, "fig3": figure3, "fig4": figure4, "fig5": figure5,
    "fig8": figure8, "fig9": figure9, "fig10": figure10,
    "table1": table1, "table3": table3, "cpi": cpi_accounting,
    "legality": legality_census,
}

#: The simulation sweep each experiment needs (census-only experiments
#: — fig2/fig4/fig5/table1 — run no pipeline simulations at all).
_EXPERIMENT_MODES = {
    "fig3": (FusionMode.NONE, FusionMode.CSF_SBR, FusionMode.RISCV_PP),
    "fig8": (FusionMode.HELIOS, FusionMode.ORACLE),
    "fig9": (FusionMode.NONE, FusionMode.HELIOS, FusionMode.ORACLE),
    "fig10": (FusionMode.NONE, FusionMode.RISCV, FusionMode.CSF_SBR,
              FusionMode.RISCV_PP, FusionMode.HELIOS, FusionMode.ORACLE),
    "table3": (FusionMode.HELIOS,),
    "cpi": (FusionMode.NONE, FusionMode.HELIOS),
}

_MODES = {mode.value.lower(): mode for mode in FusionMode}


def _parse_mode(text: str) -> FusionMode:
    try:
        return _MODES[text.lower()]
    except KeyError:
        raise SystemExit("unknown mode %r; choose from: %s"
                         % (text, ", ".join(m.value for m in FusionMode))) from None


def _workload_list(arg: Optional[str]) -> Optional[List[str]]:
    if not arg:
        return None
    names = [n.strip() for n in arg.split(",") if n.strip()]
    try:
        return ensure_known(names)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_workloads(_args) -> int:
    print("%-17s %-8s %7s  %s" % ("name", "suite", "u-ops", "description"))
    for name in workload_names():
        spec = CATALOG[name]
        print("%-17s %-8s %7d  %s" % (name, spec.suite,
                                      len(build_workload(name)),
                                      spec.description))
    return 0


def _config_from(args) -> ProcessorConfig:
    config = ProcessorConfig()
    if getattr(args, "fp_kind", None):
        config = dataclasses.replace(config, fp_kind=args.fp_kind)
    return config


def _trace_for(args):
    """The trace a simulate-family command operates on.

    ``--scale-to N`` builds the iteration-scaled multi-million-µop
    trace; ``--max-uops N`` caps the regular catalog capture; neither
    uses the catalog default (:data:`repro.config.DEFAULT_MAX_UOPS`).
    """
    if getattr(args, "scale_to", None):
        from repro.sampling import build_scaled_workload
        return build_scaled_workload(args.workload, args.scale_to)
    if getattr(args, "max_uops", None):
        return build_workload(args.workload, max_uops=args.max_uops)
    return build_workload(args.workload)


def _render_estimate(est) -> str:
    lines = ["sampled estimate: %s, %s" % (est.workload, est.mode)]
    if est.exact:
        lines.append("  trace too short to sample — simulated in full "
                     "detail (exact, %d µ-ops)" % est.total_uops)
    else:
        warm = ("continuous" if est.warmup_uops is None
                else "bounded %d µ-ops" % est.warmup_uops)
        lines.append("  %d µ-ops: exact head %d + %d windows × %d "
                     "measured (warming: %s)"
                     % (est.total_uops, est.head_uops, est.windows,
                        est.window_uops, warm))
    lines.append("  IPC %.4f ± %.2f%%  (95%% CI %.4f – %.4f)"
                 % (est.ipc_estimate, 100 * est.ipc_rel_err,
                    est.ipc_low, est.ipc_high))
    if est.cpi is not None:
        lines.append("  CPI %.4f ± %.4f  (est. %.0f cycles)"
                     % (est.cpi.mean, est.cpi.half_width, est.est_cycles))
    if est.cpi_bucket_shares:
        top = sorted(est.cpi_bucket_shares.items(),
                     key=lambda kv: -kv[1])[:6]
        lines.append("  CPI buckets: " + ", ".join(
            "%s %.1f%%" % (name, 100 * share) for name, share in top))
    return "\n".join(lines)


def _simulate_sampled(args, config: ProcessorConfig) -> int:
    from repro.sampling import sampled_simulate
    if args.sample < 2:
        raise SystemExit("--sample needs at least 2 strata "
                         "(exact head + one detail window)")
    mode = _parse_mode(args.mode) if args.mode else FusionMode.HELIOS
    est = sampled_simulate(_trace_for(args), config.with_mode(mode),
                           windows=args.sample, warmup=args.warmup,
                           name=args.workload)
    print(_render_estimate(est))
    return 0


def _simulate_segmented(args, config: ProcessorConfig) -> int:
    from repro.experiments import get_segmented_result
    if args.segments < 1:
        raise SystemExit("--segments needs at least 1 segment")
    mode = _parse_mode(args.mode) if args.mode else FusionMode.HELIOS
    result = get_segmented_result(
        args.workload, mode, args.segments, warmup=args.warmup,
        config=config, jobs=args.jobs, max_uops=args.max_uops,
        scale_to=args.scale_to, job_timeout=args.job_timeout,
        retries=args.retries)
    print(result.summary())
    warm = ("full-prefix (bit-exact splice)" if args.warmup is None
            else "bounded %d µ-ops (approximate splice)" % args.warmup)
    print("spliced from %d segment(s); warmup: %s"
          % (args.segments, warm))
    return 0


def _cmd_simulate(args) -> int:
    if args.workload not in CATALOG:
        raise SystemExit("unknown workload %r (see `repro workloads`)"
                         % args.workload)
    if args.sample is not None and args.segments is not None:
        raise SystemExit(
            "--sample (approximate, single-process) and --segments "
            "(exact, parallel) are alternative strategies; pick one "
            "(see DESIGN §4e)")
    config = _config_from(args)
    if args.sample is not None:
        return _simulate_sampled(args, config)
    if args.segments is not None:
        return _simulate_segmented(args, config)
    trace = _trace_for(args)
    if args.mode:
        mode = _parse_mode(args.mode)
        if args.fp_kind and mode is not FusionMode.HELIOS:
            raise SystemExit(
                "--fp-kind selects the Helios fusion predictor and has "
                "no effect with --mode %s; drop it or use --mode Helios"
                % mode.value)
        result = simulate(trace, config.with_mode(mode),
                          name=args.workload)
        print(result.summary())
        return 0
    results = simulate_modes(trace, base_config=config, name=args.workload)
    uplift = ipc_uplift(results)
    print("%-15s %8s %9s" % ("configuration", "IPC", "vs base"))
    for name, result in results.items():
        print("%-15s %8.3f %+8.1f%%"
              % (name, result.ipc, 100 * (uplift[name] - 1)))
    return 0


def _cmd_experiment(args) -> int:
    if args.name == "table2":
        if args.fp_kind:
            raise SystemExit("--fp-kind does not affect table2 "
                             "(static storage arithmetic)")
        print(table2().render())
        return 0
    runner = _EXPERIMENTS.get(args.name)
    if runner is None:
        raise SystemExit("unknown experiment %r; choose from: %s, table2"
                         % (args.name, ", ".join(sorted(_EXPERIMENTS))))
    modes = _EXPERIMENT_MODES.get(args.name, ())
    if args.fp_kind and FusionMode.HELIOS not in modes:
        raise SystemExit(
            "--fp-kind selects the Helios fusion predictor, which %r "
            "never simulates; it applies to: %s"
            % (args.name, ", ".join(sorted(
                name for name, sweep in _EXPERIMENT_MODES.items()
                if FusionMode.HELIOS in sweep))))
    config = _config_from(args)
    workloads = _workload_list(args.workloads)
    if modes:
        # Warm the (memo + disk) cache in parallel; the generator below
        # then assembles its rows entirely from cache hits.
        try:
            run_suite(modes, workloads=workloads, config=config,
                      jobs=args.jobs, cache_dir=args.cache_dir,
                      use_cache=False if args.no_cache else None,
                      job_timeout=args.job_timeout, retries=args.retries)
        except SweepJobError as exc:
            _write_report_json(args.report_json)
            print("sweep failed: %s" % exc, file=sys.stderr)
            return 1
        _write_report_json(args.report_json)
    print(runner(workloads, config=config).render())
    return 0


def _write_json(path: str, data: dict) -> None:
    """Persist one JSON-safe dict, pretty-printed and key-sorted."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _write_report_json(path: Optional[str]) -> None:
    """Persist the last sweep's execution report (``--report-json``)."""
    if not path:
        return
    import json

    report = last_sweep_report()
    if report is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
    print("wrote sweep execution report to %s" % path)


def _cmd_sweep_report(args) -> int:
    """Render a persisted sweep execution report."""
    import json

    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        report = SweepReport.from_dict(data)
    except OSError as exc:
        raise SystemExit("cannot read %s: %s" % (args.file, exc)) from exc
    except ValueError as exc:
        raise SystemExit("invalid sweep report %s: %s" % (args.file, exc)) from exc
    print(report.render())
    return 1 if report.failed_jobs else 0


def _cmd_cache(args) -> int:
    cache = (ResultCache(args.cache_dir) if args.cache_dir
             else ResultCache())
    if args.action == "clear":
        removed = cache.clear()
        print("removed %d cached result(s) from %s" % (removed, cache.root))
        return 0
    entries = cache.entries()
    print("cache directory: %s" % cache.root)
    print("entries: %d (%.1f KiB)"
          % (len(entries), cache.size_bytes() / 1024.0))
    orphans, quarantined = cache.orphan_tmps(), cache.quarantined()
    if orphans or quarantined:
        print("orphaned tmp files: %d, quarantined corrupt entries: %d "
              "(`repro cache clear` reclaims both)"
              % (len(orphans), len(quarantined)))
    for entry in entries:
        print("  %-20s %-14s %7d B  %s"
              % (entry["workload"], entry["mode"], entry["bytes"],
                 entry["file"]))
    return 0


def _cmd_trace(args) -> int:
    store = (TraceStore(args.trace_dir) if args.trace_dir
             else TraceStore())
    if args.action == "clear":
        removed = store.clear()
        print("removed %d stored trace(s) from %s" % (removed, store.root))
        return 0
    if args.action == "export":
        if not args.workload:
            raise SystemExit("trace export needs a workload name")
        if args.workload not in CATALOG:
            raise SystemExit("unknown workload %r (see `repro workloads`)"
                             % args.workload)
        from repro.isa import save_trace
        trace = build_workload(args.workload)
        out = args.out or ("%s.trace.jsonl" % args.workload)
        save_trace(trace, out)
        print("wrote %d µ-ops to %s (portable JSON-lines)"
              % (len(trace), out))
        return 0
    entries = store.entries()
    print("trace store: %s" % store.root)
    print("entries: %d (%.1f KiB)"
          % (len(entries), store.size_bytes() / 1024.0))
    orphans, quarantined = store.orphan_tmps(), store.quarantined()
    if orphans or quarantined:
        print("orphaned tmp files: %d, quarantined corrupt entries: %d "
              "(`repro trace clear` reclaims both)"
              % (len(orphans), len(quarantined)))
    for entry in entries:
        print("  %-20s %8s µ-ops %9d B  %s"
              % (entry["name"], entry["uops"], entry["bytes"],
                 entry["file"]))
    return 0


def _cmd_bench(args) -> int:
    from repro.perf import (compare_with_previous, load_bench, run_bench,
                            write_bench)
    workloads = _workload_list(args.workloads)
    previous = load_bench(args.output)
    payload = run_bench(workloads=workloads, quick=args.quick,
                        max_uops=args.max_uops, sample=args.sample,
                        serve=args.serve)
    compare_with_previous(payload, previous)
    path = write_bench(payload, args.output)
    totals = payload["totals"]
    print("bench: %d workload(s), modes: %s"
          % (len(payload["workloads"]), ", ".join(payload["modes"])))
    print("  trace capture (cold interp) %7.3f s"
          % totals["trace_build_cold_s"])
    print("  trace replay  (store load)  %7.3f s  (%.1fx faster)"
          % (totals["store_load_s"],
             payload["capture_vs_replay_speedup"] or 0.0))
    print("  oracle pair extraction      %7.3f s"
          % totals["oracle_pairs_s"])
    for mode, seconds in totals["pipeline_run_s"].items():
        print("  pipeline run %-14s %7.3f s" % (mode, seconds))
    obs = payload.get("observability") or {}
    if obs:
        print("  instrumentation overhead (%s, %s, best of %d):"
              % (obs["workload"], obs["mode"], obs["reps"]))
        print("    no-op  %+6.2f%%  (%.3f s vs %.3f s bare)"
              % (obs["noop_overhead_pct"], obs["noop_run_s"],
                 obs["bare_run_s"]))
        print("    traced %+6.2f%%  (%.3f s)"
              % (obs["traced_overhead_pct"], obs["traced_run_s"]))
    throughput = payload.get("throughput") or {}
    if throughput.get("aggregate_uops_per_s"):
        print("  aggregate throughput: %d µops/s  (%d µ-ops in %.3f s)"
              % (throughput["aggregate_uops_per_s"],
                 throughput["aggregate_uops"],
                 throughput["aggregate_run_s"]))
    sampled = payload.get("sampled") or {}
    if sampled.get("rows"):
        print("  sampled vs full detail (%s, ~%d µ-ops, %d strata):"
              % (sampled["mode"], sampled["target_uops"],
                 sampled["windows"]))
        for name, row in sampled["rows"].items():
            print("    %-12s %5.1fx  (%.2f s vs %.2f s)  "
                  "IPC %.4f vs %.4f  err %+.2f%% (bound ±%.2f%%)%s"
                  % (name, row["speedup"] or 0.0, row["sampled_run_s"],
                     row["full_run_s"], row["ipc_estimate"],
                     row["full_ipc"], 100 * row["ipc_err_vs_full"],
                     100 * row["ipc_rel_err_bound"],
                     "" if row["within_bound"] else "  OUT OF BOUND"))
    serving = payload.get("serving") or {}
    if serving.get("ratios"):
        print("  serving (%d requests, %d closed-loop workers):"
              % (serving["requests"], serving["workers"]))
        for key in sorted(serving["ratios"], key=int):
            row = serving["ratios"][key]
            print("    dup %3s%%  %8.1f req/s  p50 %7.1f ms  "
                  "p99 %7.1f ms  %d execution(s) for %d ok"
                  % (key, row["throughput_rps"],
                     row["latency_ms"]["p50"], row["latency_ms"]["p99"],
                     row["executions"], row["ok"]))
        if serving.get("speedup_90_vs_0"):
            print("    90%% vs 0%% duplicates: %.1fx served-request "
                  "throughput" % serving["speedup_90_vs_0"])
    delta = payload.get("vs_previous")
    if delta and delta.get("aggregate_speedup"):
        verdict = ("cycles identical" if delta["cycles_identical"]
                   else "TIMING CHANGED: %d cell(s) moved"
                   % len(delta["cycle_mismatches"]))
        print("  vs previous bench (%s): %.3fx aggregate µops/s, "
              "%d cells compared, %s"
              % (delta.get("previous_timestamp"),
                 delta["aggregate_speedup"], delta["cells_compared"],
                 verdict))
    print("wrote %s" % path)
    return 0


def _endpoint_from(args) -> dict:
    """Socket/TCP endpoint kwargs shared by serve and loadgen."""
    if args.socket and args.host:
        raise SystemExit("choose one of --socket or --host, not both")
    if args.socket:
        return {"path": args.socket}
    if args.host:
        return {"host": args.host, "port": args.port}
    raise SystemExit("an endpoint is required: --socket PATH or "
                     "--host HOST [--port N]")


def _cmd_serve(args) -> int:
    """Run the long-running simulation service until SIGINT/SIGTERM."""
    import asyncio
    import json
    import signal

    from repro.serve.server import SimulationServer

    server = SimulationServer(
        pool_jobs=args.pool_jobs,
        queue_limit=args.queue_limit,
        lru_capacity=args.lru_capacity,
        use_disk_cache=False if args.no_disk_cache else None,
        job_timeout=args.job_timeout,
        retries=args.retries,
        max_batch=args.max_batch,
        **_endpoint_from(args))

    async def _run() -> None:
        await server.start()
        print("repro serve: listening on %s  (pool_jobs=%d, "
              "queue_limit=%d, lru=%d)"
              % (server.address, server.pool_jobs, server.queue_limit,
                 args.lru_capacity))
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("repro serve: draining...")
        await server.drain()
        await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    if args.metrics_json:
        _write_json(args.metrics_json, server.metrics())
        print("repro serve: metrics -> %s" % args.metrics_json)
    return 0


def _cmd_loadgen(args) -> int:
    """Drive a deterministic load run against a live server."""
    from repro.serve.loadgen import LoadSpec, run_load

    requests = 30 if args.quick else args.requests
    spec = LoadSpec(requests=requests,
                    duplicate_ratio=args.duplicate_ratio,
                    hot_keys=args.hot_keys,
                    workers=args.workers,
                    seed=args.seed,
                    verb=args.verb)
    report = run_load(spec, timeout=args.timeout, **_endpoint_from(args))
    data = report.to_dict()
    print("loadgen: %d request(s), %d ok, %.1f req/s over %.2f s"
          % (data["requests"], data["ok"], data["throughput_rps"],
             data["elapsed_s"]))
    print("  latency ms: p50 %(p50).1f  p90 %(p90).1f  p99 %(p99).1f  "
          "max %(max).1f" % data["latency_ms"])
    if data["tiers"]:
        print("  tiers: " + ", ".join(
            "%s=%d" % (tier, count)
            for tier, count in sorted(data["tiers"].items())))
    if data["errors"]:
        print("  errors: " + ", ".join(
            "%s=%d" % (code, count)
            for code, count in sorted(data["errors"].items())))
    if data["executions"]:
        print("  server executions: %d  (dedup saved %d)"
              % (data["executions"],
                 max(0, data["ok"] - data["executions"])))
    if args.json:
        _write_json(args.json, data)
        print("loadgen: report -> %s" % args.json)
    return 0 if data["ok"] == data["requests"] else 1


def _cmd_profile(args) -> int:
    """cProfile one (workload, mode) pipeline run with stage attribution."""
    import json

    from repro.perf import (dump_pstats, profile_run, render_profile,
                            serializable)

    if args.workload not in CATALOG:
        raise SystemExit("unknown workload %r (see `repro workloads`)"
                         % args.workload)
    mode = _parse_mode(args.mode) if args.mode else FusionMode.HELIOS
    payload = profile_run(args.workload, mode=mode,
                          max_uops=args.max_uops,
                          config=_config_from(args), top=args.top)
    # Write artifacts before printing: a downstream `| head` closing
    # the pipe must not cost the files.
    if args.pstats_out:
        dump_pstats(payload, args.pstats_out)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(serializable(payload), handle, indent=2)
    print(render_profile(payload))
    if args.pstats_out:
        print("\nwrote raw profile to %s (snakeviz/pstats-compatible)"
              % args.pstats_out)
    if args.json_out:
        print("wrote profile payload to %s" % args.json_out)
    return 0


def _cmd_debug(args) -> int:
    """Observability deep-dive on one (workload, configuration) run."""
    import json

    from repro.obs import (PipelineObserver, chrome_trace,
                           occupancy_report, validate_chrome_trace)

    if args.workload not in CATALOG:
        raise SystemExit("unknown workload %r (see `repro workloads`)"
                         % args.workload)
    if args.max_uops:
        trace = build_workload(args.workload, max_uops=args.max_uops)
    else:
        trace = build_workload(args.workload)
    mode = _parse_mode(args.mode) if args.mode else FusionMode.HELIOS
    config = _config_from(args).with_mode(mode)
    observer = (PipelineObserver(ring_capacity=args.ring) if args.ring
                else PipelineObserver())
    result = simulate(trace, config, name=args.workload, observer=observer)

    print(result.summary())
    print()
    print(result.cpi_report())
    print()
    print(occupancy_report(observer))
    counts = observer.event_counts()
    print()
    print("pipeline events: %d emitted, %d retained (ring %d), %d dropped"
          % (observer.ring.emitted, len(observer.ring),
             observer.ring.capacity, observer.ring.dropped))
    print("  " + ", ".join("%s %d" % (kind, count)
                           for kind, count in counts.items()))
    if args.events_out:
        payload = chrome_trace(observer.events(), workload=args.workload,
                               mode=mode.value,
                               dropped=observer.ring.dropped)
        validate_chrome_trace(payload)
        with open(args.events_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        print("wrote %d trace events to %s (load in Perfetto / "
              "chrome://tracing)"
              % (len(payload["traceEvents"]), args.events_out))
    return 0


def _cmd_analyze(args) -> int:
    """Fusion-legality report + differential checks for workload(s)."""
    import json

    from repro.analysis import analyze_workload

    names = _workload_list(args.workloads)
    if not names:
        raise SystemExit("analyze needs at least one workload name")
    modes = [_parse_mode(args.mode)] if args.mode else None
    payloads = []
    failed = False
    for index, name in enumerate(names):
        if index:
            print()
        report = analyze_workload(name, modes=modes,
                                  max_uops=args.max_uops,
                                  sanitize=not args.no_sanitize,
                                  static_contract=args.static)
        print(report.render())
        if args.explain is not None:
            print()
            verdicts = report.legality.explain_pc(args.explain)
            if not verdicts:
                print("no fusion candidates at pc 0x%x" % args.explain)
            for verdict in verdicts:
                print("  " + verdict.describe())
        payloads.append(report.to_dict())
        failed = failed or not report.ok
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payloads if len(payloads) > 1 else payloads[0],
                      handle, indent=2)
        print("wrote %s" % args.json)
    return 1 if failed else 0


def _parse_pc_pair(text: str):
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            "expected two comma-separated PCs, e.g. 0x10008,0x1000c")
    try:
        return tuple(int(p, 0) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError("bad PC in %r (hex ok)" % text) from None


def _cmd_static(args) -> int:
    """Static opportunity analysis + the static↔dynamic contract."""
    import json

    from repro.analysis.static.contract import (
        check_workload_contract, render_contract_table)

    if args.workloads.strip().lower() == "all":
        names = list(workload_names())
    else:
        names = _workload_list(args.workloads)
    if not names:
        raise SystemExit("static needs at least one workload name")
    modes = ([m.strip() for m in args.mode.split(",") if m.strip()]
             if args.mode else ["oracle", "helios"])
    for mode in modes:
        if mode.lower() != "oracle":
            _parse_mode(mode)  # fail fast on a typo
    contracts = []
    for name in names:
        contract = check_workload_contract(
            name, modes=modes, max_uops=args.max_uops,
            path_budget=args.path_budget)
        contracts.append(contract)
        if args.verbose or not contract.ok:
            print(contract.render())
            print()
    print(render_contract_table(contracts))
    if args.explain is not None:
        head_pc, tail_pc = args.explain
        for contract in contracts:
            static = contract.static
            print()
            print("%s: static candidates at (0x%x, 0x%x):"
                  % (contract.workload, head_pc, tail_pc))
            exact = [c for c in static.candidates.values()
                     if c.head_pc == head_pc and c.tail_pc == tail_pc]
            listed = exact or static.candidates_at_pc(head_pc)
            if not listed:
                print("  none (no walked path pairs these PCs)")
            for candidate in listed[:20]:
                print("  " + candidate.describe())
    if args.json:
        payloads = [c.to_dict(include_candidates=args.candidates)
                    for c in contracts]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payloads if len(payloads) > 1 else payloads[0],
                      handle, indent=2)
        print("wrote %s" % args.json)
    return 0 if all(c.ok for c in contracts) else 1


def _cmd_storage(_args) -> int:
    print(helios_storage_budget().report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Helios instruction-fusion reproduction (MICRO 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload catalog") \
        .set_defaults(func=_cmd_workloads)

    sim = sub.add_parser("simulate", help="simulate one workload")
    sim.add_argument("workload")
    sim.add_argument("--mode", help="one configuration (default: all six; "
                                    "--sample/--segments default: Helios)")
    sim.add_argument("--fp-kind", choices=["tournament", "tage", "local"],
                     help="fusion predictor organization for Helios")
    sim.add_argument("--max-uops", type=int, default=None, metavar="N",
                     help="dynamic µ-op cap per trace (default %d, "
                          "repro.config.DEFAULT_MAX_UOPS)"
                          % DEFAULT_MAX_UOPS)
    sim.add_argument("--scale-to", type=int, default=None, metavar="N",
                     help="iteration-scale the kernel until its trace "
                          "reaches ~N µ-ops (multi-million-µop runs; "
                          "overrides --max-uops)")
    sim.add_argument("--sample", type=int, nargs="?",
                     const=_SAMPLE_DEFAULT_WINDOWS,
                     default=None, metavar="N",
                     help="sampled simulation: N systematic strata — "
                          "exact head + N-1 detail windows with "
                          "functional warming between them (default "
                          "N=%d); reports IPC/CPI with a 95%%-confidence "
                          "error bar" % _SAMPLE_DEFAULT_WINDOWS)
    sim.add_argument("--warmup", type=int, default=None, metavar="M",
                     help="bounded warmup budget (µ-ops) for "
                          "--sample/--segments; default: continuous/"
                          "full-prefix warming (slower, most accurate; "
                          "bit-exact splice for --segments)")
    sim.add_argument("--segments", type=int, default=None, metavar="K",
                     help="segment-parallel exact simulation: splice K "
                          "independently-simulated segments (bit-exact "
                          "with default full warmup)")
    sim.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for --segments "
                          "(default: $REPRO_JOBS or 1)")
    sim.add_argument("--job-timeout", type=float, default=None,
                     metavar="S",
                     help="per-segment deadline in seconds for "
                          "--segments; a hung worker is killed and the "
                          "segment retried (default: $REPRO_JOB_TIMEOUT "
                          "or off)")
    sim.add_argument("--retries", type=int, default=None, metavar="N",
                     help="retry budget per segment for --segments "
                          "(default: $REPRO_JOB_RETRIES or 2)")
    sim.set_defaults(func=_cmd_simulate)

    exp = sub.add_parser("experiment",
                         help="regenerate a paper table/figure")
    exp.add_argument("name", help="fig2|fig3|fig4|fig5|fig8|fig9|fig10|"
                                  "table1|table2|table3|legality")
    exp.add_argument("--workloads",
                     help="comma-separated subset (default: all 32)")
    exp.add_argument("--fp-kind", choices=["tournament", "tage", "local"],
                     help="fusion predictor organization for Helios sweeps")
    exp.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="simulate cache misses across N worker "
                          "processes (default: $REPRO_JOBS or 1)")
    exp.add_argument("--cache-dir", metavar="DIR",
                     help="persistent result cache directory "
                          "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    exp.add_argument("--no-cache", action="store_true",
                     help="skip the persistent result cache entirely")
    exp.add_argument("--job-timeout", type=float, default=None,
                     metavar="S",
                     help="per-job deadline in seconds; a hung worker "
                          "is killed and the job retried (default: "
                          "$REPRO_JOB_TIMEOUT or off — off keeps "
                          "existing flows bit-exact)")
    exp.add_argument("--retries", type=int, default=None, metavar="N",
                     help="retry budget per failed job, with capped "
                          "deterministic exponential backoff (default: "
                          "$REPRO_JOB_RETRIES or 2)")
    exp.add_argument("--report-json", metavar="FILE",
                     help="write the sweep execution report (per-job "
                          "attempts, durations, failure classes) here — "
                          "written on failure too")
    exp.set_defaults(func=_cmd_experiment)

    swrep = sub.add_parser(
        "sweep-report",
        help="render a sweep execution report written by "
             "`experiment --report-json`")
    swrep.add_argument("file", help="report JSON file to render")
    swrep.set_defaults(func=_cmd_sweep_report)

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache")
    cache.add_argument("action", nargs="?", default="info",
                       choices=["info", "clear"])
    cache.add_argument("--cache-dir", metavar="DIR",
                       help="cache directory (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro)")
    cache.set_defaults(func=_cmd_cache)

    trace = sub.add_parser(
        "trace", help="inspect/clear the trace store or export a trace")
    trace.add_argument("action", nargs="?", default="info",
                       choices=["info", "clear", "export"])
    trace.add_argument("workload", nargs="?",
                       help="workload to export (action: export)")
    trace.add_argument("--out", metavar="FILE",
                       help="export target (default: <workload>."
                            "trace.jsonl)")
    trace.add_argument("--trace-dir", metavar="DIR",
                       help="trace store directory (default: "
                            "$REPRO_TRACE_DIR or <cache dir>/traces)")
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench", help="wall-clock perf harness -> BENCH_pipeline.json")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke subset (3 workloads, 2 modes)")
    bench.add_argument("--workloads",
                       help="comma-separated subset (default: "
                            "$REPRO_BENCH_WORKLOADS or the "
                            "representative 12)")
    bench.add_argument("--max-uops", type=int, default=None, metavar="N",
                       help="dynamic µ-op cap per trace (default %d, "
                            "repro.config.DEFAULT_MAX_UOPS)"
                            % DEFAULT_MAX_UOPS)
    bench.add_argument("--sample", action="store_true",
                       help="also benchmark sampled simulation on "
                            "scaled traces: speedup vs full detail + "
                            "observed IPC error vs the reported bound")
    bench.add_argument("--serve", action="store_true",
                       help="also benchmark the simulation service: "
                            "served-request throughput + latency "
                            "percentiles at 0/50/90%% duplicate "
                            "ratios")
    bench.add_argument("--output", default="BENCH_pipeline.json",
                       metavar="FILE", help="output path")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="long-running simulation service (JSON lines "
                      "over a unix socket or TCP)")
    serve.add_argument("--socket", metavar="PATH",
                       help="bind a unix socket at PATH")
    serve.add_argument("--host", metavar="HOST",
                       help="bind TCP on HOST (with --port)")
    serve.add_argument("--port", type=int, default=0, metavar="N",
                       help="TCP port (default: kernel-assigned)")
    serve.add_argument("--pool-jobs", type=int, default=1, metavar="N",
                       help="worker processes per batch (default 1: "
                            "serial in-supervisor execution)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       metavar="N",
                       help="max queued+executing requests before "
                            "busy responses (default 64)")
    serve.add_argument("--lru-capacity", type=int, default=256,
                       metavar="N",
                       help="in-memory result tier entries (default "
                            "256; 0 disables)")
    serve.add_argument("--no-disk-cache", action="store_true",
                       help="skip the persistent result cache tier")
    serve.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job deadline (pool mode only)")
    serve.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retry budget per failed job")
    serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                       help="max requests per execution batch")
    serve.add_argument("--metrics-json", metavar="FILE",
                       help="dump serving metrics to FILE on exit")
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="deterministic load generator against a "
                        "running `repro serve`")
    loadgen.add_argument("--socket", metavar="PATH",
                         help="connect to a unix socket")
    loadgen.add_argument("--host", metavar="HOST",
                         help="connect via TCP (with --port)")
    loadgen.add_argument("--port", type=int, default=0, metavar="N")
    loadgen.add_argument("--requests", type=int, default=200,
                         metavar="N", help="schedule length")
    loadgen.add_argument("--quick", action="store_true",
                         help="30-request smoke run")
    loadgen.add_argument("--duplicate-ratio", type=float, default=0.5,
                         metavar="R",
                         help="fraction of requests drawn from the "
                              "hot set (default 0.5)")
    loadgen.add_argument("--hot-keys", type=int, default=8, metavar="N",
                         help="distinct hot (workload, mode) keys")
    loadgen.add_argument("--workers", type=int, default=4, metavar="N",
                         help="closed-loop client threads")
    loadgen.add_argument("--seed", type=int, default=0, metavar="N",
                         help="schedule seed (same seed = same "
                              "requests)")
    loadgen.add_argument("--verb", default="simulate",
                         choices=["simulate", "sample", "analyze"],
                         help="request type to issue")
    loadgen.add_argument("--timeout", type=float, default=300.0,
                         metavar="SECONDS", help="per-request timeout")
    loadgen.add_argument("--json", metavar="FILE",
                         help="write the load report to FILE")
    loadgen.set_defaults(func=_cmd_loadgen)

    profile = sub.add_parser(
        "profile", help="cProfile one pipeline run: host time by stage, "
                        "hottest functions, top-down CPI buckets")
    profile.add_argument("workload")
    profile.add_argument("--mode", help="configuration (default: Helios)")
    profile.add_argument("--fp-kind",
                         choices=["tournament", "tage", "local"],
                         help="fusion predictor organization for Helios")
    profile.add_argument("--max-uops", type=int, default=None, metavar="N",
                         help="dynamic µ-op cap per trace (default %d, "
                              "repro.config.DEFAULT_MAX_UOPS)"
                              % DEFAULT_MAX_UOPS)
    profile.add_argument("--top", type=int, default=15, metavar="N",
                         help="hottest functions to list (default 15)")
    profile.add_argument("--pstats-out", metavar="FILE",
                         help="dump the raw cProfile stats here")
    profile.add_argument("--json-out", metavar="FILE",
                         help="write the JSON payload here")
    profile.set_defaults(func=_cmd_profile)

    debug = sub.add_parser(
        "debug", help="observability deep-dive: top-down CPI breakdown, "
                      "occupancy report, pipeline event trace")
    debug.add_argument("workload")
    debug.add_argument("--mode", help="configuration (default: Helios)")
    debug.add_argument("--fp-kind", choices=["tournament", "tage", "local"],
                       help="fusion predictor organization for Helios")
    debug.add_argument("--events-out", metavar="FILE",
                       help="write the Chrome trace-event JSON here "
                            "(loadable in Perfetto)")
    debug.add_argument("--ring", type=int, default=None, metavar="N",
                       help="event ring capacity (default 65536; keeps "
                            "the last N events)")
    debug.add_argument("--max-uops", type=int, default=None, metavar="N",
                       help="dynamic µ-op cap per trace (default %d, "
                              "repro.config.DEFAULT_MAX_UOPS)"
                              % DEFAULT_MAX_UOPS)
    debug.set_defaults(func=_cmd_debug)

    analyze = sub.add_parser(
        "analyze", help="fusion-legality report + differential checker: "
                        "prove every committed fused pair legal and the "
                        "committed state bit-exact")
    analyze.add_argument("workloads",
                         help="comma-separated workload name(s)")
    analyze.add_argument("--mode",
                         help="one configuration (default: all six)")
    analyze.add_argument("--max-uops", type=int, default=None, metavar="N",
                         help="dynamic µ-op cap per trace (default %d, "
                              "repro.config.DEFAULT_MAX_UOPS)"
                              % DEFAULT_MAX_UOPS)
    analyze.add_argument("--no-sanitize", action="store_true",
                         help="skip the per-cycle µ-arch sanitizer "
                              "(faster; legality checks still run)")
    analyze.add_argument("--explain", type=lambda s: int(s, 0),
                         metavar="PC", default=None,
                         help="also print per-candidate verdicts for "
                              "fusion heads at this PC (hex ok)")
    analyze.add_argument("--json", metavar="FILE",
                         help="write the machine-readable report here")
    analyze.add_argument("--static", action="store_true",
                         help="also enforce the static opportunity "
                              "contract: every dynamically-legal pair "
                              "must be a static candidate or carry a "
                              "checkable reason class")
    analyze.set_defaults(func=_cmd_analyze)

    static = sub.add_parser(
        "static", help="static fusion-opportunity analyzer: CFG + "
                       "dataflow candidates per PC pair, cross-checked "
                       "against the dynamic oracle and the pipeline")
    static.add_argument("workloads",
                        help="comma-separated workload name(s), or 'all'")
    static.add_argument("--mode",
                        help="comma-separated dynamic pair sources: "
                             "'oracle' (greedy oracle's legal set) "
                             "and/or a fusion mode such as 'helios' "
                             "(that pipeline's committed pairs); "
                             "default oracle,helios")
    static.add_argument("--max-uops", type=int, default=None, metavar="N",
                        help="dynamic µ-op cap per trace (default %d)"
                             % DEFAULT_MAX_UOPS)
    static.add_argument("--path-budget", type=int,
                        default=DEFAULT_PATH_BUDGET, metavar="N",
                        help="abstract-execution visit budget per "
                             "memory head (default %d)"
                             % DEFAULT_PATH_BUDGET)
    static.add_argument("--explain", type=_parse_pc_pair, metavar="PC,PC",
                        default=None,
                        help="print the static verdict for one "
                             "(head, tail) PC pair (hex ok)")
    static.add_argument("--verbose", action="store_true",
                        help="full per-workload reports, not just the "
                             "summary table")
    static.add_argument("--candidates", action="store_true",
                        help="include every candidate in the --json "
                             "payload")
    static.add_argument("--json", metavar="FILE",
                        help="write the machine-readable report here")
    static.set_defaults(func=_cmd_static)

    sub.add_parser("storage", help="print the Table II storage budget") \
        .set_defaults(func=_cmd_storage)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`: exit quietly like other CLIs.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
