"""Assembled program container."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.isa.instructions import Instruction

#: Code base address and instruction stride (RV64G, uncompressed).
CODE_BASE = 0x1_0000
INSTRUCTION_BYTES = 4


@dataclass
class Program:
    """A sequence of decoded instructions plus its label map.

    Instructions are addressed both by index (``program[i]``) and by PC
    (``CODE_BASE + 4 * i``).  ``data_segments`` carries initial memory
    images, as ``{address: bytes}``, that the interpreter installs
    before execution.
    """

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    data_segments: dict[int, bytes] = field(default_factory=dict)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def pc_of(self, index: int) -> int:
        """PC of the instruction at ``index``."""
        return CODE_BASE + INSTRUCTION_BYTES * index

    def index_of_pc(self, pc: int) -> int:
        """Instruction index for a PC inside the code segment."""
        index, rem = divmod(pc - CODE_BASE, INSTRUCTION_BYTES)
        if rem or not 0 <= index < len(self.instructions):
            raise IndexError("PC 0x%x is outside the program" % pc)
        return index

    def label_pc(self, label: str) -> int:
        """PC of a label."""
        return self.pc_of(self.labels[label])

    def listing(self) -> str:
        """Human-readable disassembly, one line per instruction."""
        index_to_label: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            index_to_label.setdefault(index, []).append(label)
        lines = []
        for i, inst in enumerate(self.instructions):
            for label in index_to_label.get(i, ()):
                lines.append("%s:" % label)
            lines.append("  %06x  %s" % (self.pc_of(i), inst))
        return "\n".join(lines)

    def static_mix(self) -> dict[str, int]:
        """Count of static instructions per opclass name."""
        mix: dict[str, int] = {}
        for inst in self.instructions:
            key = inst.opclass.name
            mix[key] = mix.get(key, 0) + 1
        return mix
