"""A symbolic assembler for the RV64G subset.

The assembler understands the usual two-pass label scheme, the common
pseudo-instructions (``li``, ``mv``, ``j``, ``beqz``, ``ret``, ...) and
a few data directives::

    .data 0x20000        # switch to a data segment at this address
    .dword 1, 2, 3       # emit 8-byte little-endian values
    .word 7              # emit 4-byte values
    .zero 64             # emit zero bytes
    .text                # switch back to code

Immediates may be decimal or ``0x`` hexadecimal.  Comments start with
``#`` or ``;``.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.isa.instructions import (
    ALU_RRI,
    ALU_RRR,
    BRANCH_OPS,
    DIV_OPS,
    FP_CMP,
    FP_RR,
    FP_RRR,
    LOAD_OPS,
    MEM_SIZE,
    MUL_OPS,
    STORE_OPS,
    Instruction,
    opclass_for,
)
from repro.isa.program import CODE_BASE, INSTRUCTION_BYTES, Program
from repro.isa.registers import reg_index

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w*)\s*\(\s*([\w.$]+)\s*\)$")

_MASK64 = (1 << 64) - 1


class AssemblyError(ValueError):
    """Raised for any syntactic or semantic assembly problem."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        if line_no is not None:
            message = "line %d: %s" % (line_no, message)
        super().__init__(message)


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError("bad integer %r" % text, line_no) from None


def _reg(text: str, line_no: int) -> int:
    try:
        return reg_index(text)
    except KeyError:
        raise AssemblyError("unknown register %r" % text, line_no) from None


def _split_operands(text: str) -> list[str]:
    """Split an operand string on commas not inside parentheses."""
    operands, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


def _sext(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _expand_li(rd: str, value: int) -> list[str]:
    """Expand ``li`` into lui/addi/slli/addi chains (GNU as style)."""
    value = _sext(value & _MASK64, 64)
    if -2048 <= value < 2048:
        return ["addi %s, x0, %d" % (rd, value)]
    if -(1 << 31) <= value < (1 << 31):
        upper = (value + 0x800) >> 12
        lower = value - (upper << 12)
        upper = _sext(upper, 20)
        lines = ["lui %s, %d" % (rd, upper & 0xFFFFF)]
        if lower:
            lines.append("addiw %s, %s, %d" % (rd, rd, lower))
        return lines
    # 64-bit constant: materialize the upper part, shift, add pieces.
    lower12 = _sext(value, 12)
    remainder = (value - lower12) >> 12
    shift = 12
    while remainder % 2 == 0 and not -(1 << 31) <= remainder < (1 << 31):
        remainder >>= 1
        shift += 1
    lines = _expand_li(rd, remainder)
    lines.append("slli %s, %s, %d" % (rd, rd, shift))
    if lower12:
        lines.append("addi %s, %s, %d" % (rd, rd, lower12))
    return lines


_BRANCH_ZERO = {
    "beqz": ("beq", False), "bnez": ("bne", False),
    "bltz": ("blt", False), "bgez": ("bge", False),
    "blez": ("bge", True), "bgtz": ("blt", True),
}
_BRANCH_SWAP = {"ble": "bge", "bgt": "blt", "bleu": "bgeu", "bgtu": "bltu"}


def _expand_pseudo(mnemonic: str, operands: list[str], line_no: int) -> Optional[list[str]]:
    """Return replacement source lines for a pseudo-instruction."""
    if mnemonic == "li":
        if len(operands) != 2:
            raise AssemblyError("li needs 2 operands", line_no)
        return _expand_li(operands[0], _parse_int(operands[1], line_no))
    if mnemonic == "mv":
        return ["addi %s, %s, 0" % (operands[0], operands[1])]
    if mnemonic == "not":
        return ["xori %s, %s, -1" % (operands[0], operands[1])]
    if mnemonic == "neg":
        return ["sub %s, x0, %s" % (operands[0], operands[1])]
    if mnemonic == "seqz":
        return ["sltiu %s, %s, 1" % (operands[0], operands[1])]
    if mnemonic == "snez":
        return ["sltu %s, x0, %s" % (operands[0], operands[1])]
    if mnemonic == "sext.w":
        return ["addiw %s, %s, 0" % (operands[0], operands[1])]
    if mnemonic == "j":
        return ["jal x0, %s" % operands[0]]
    if mnemonic == "jr":
        return ["jalr x0, %s, 0" % operands[0]]
    if mnemonic == "ret":
        return ["jalr x0, ra, 0"]
    if mnemonic == "fmv.d" and len(operands) == 2:
        return ["fsgnj.d %s, %s, %s" % (operands[0], operands[1], operands[1])]
    if mnemonic in _BRANCH_ZERO:
        real, swap = _BRANCH_ZERO[mnemonic]
        rs, target = operands[0], operands[1]
        if swap:
            return ["%s x0, %s, %s" % (real, rs, target)]
        return ["%s %s, x0, %s" % (real, rs, target)]
    if mnemonic in _BRANCH_SWAP:
        real = _BRANCH_SWAP[mnemonic]
        return ["%s %s, %s, %s" % (real, operands[1], operands[0], operands[2])]
    return None


class _Assembler:
    def __init__(self, name: str):
        self.name = name
        self.lines: list[tuple[str, int]] = []   # (source line, original line no)
        self.labels: dict[str, int] = {}
        self.data_segments: dict[int, bytearray] = {}
        self._data_cursor: Optional[int] = None
        self._in_data = False

    # ---- pass 1: strip comments, expand pseudos, collect labels ----

    def feed(self, source: str) -> None:
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    label, line = match.group(1), match.group(2).strip()
                    if label in self.labels:
                        raise AssemblyError("duplicate label %r" % label, line_no)
                    if self._in_data:
                        raise AssemblyError(
                            "labels inside .data are not supported", line_no)
                    self.labels[label] = len(self.lines)
                    continue
                break
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, line_no)
                continue
            if self._in_data:
                raise AssemblyError("instruction inside .data segment", line_no)
            mnemonic, operand_text = (line.split(None, 1) + [""])[:2]
            mnemonic = mnemonic.lower()
            operands = _split_operands(operand_text)
            expansion = _expand_pseudo(mnemonic, operands, line_no)
            if expansion is not None:
                for expanded in expansion:
                    self.lines.append((expanded, line_no))
            else:
                self.lines.append((line, line_no))

    def _directive(self, line: str, line_no: int) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        arg = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._in_data = False
        elif name == ".data":
            self._in_data = True
            self._data_cursor = _parse_int(arg.strip(), line_no)
            self.data_segments.setdefault(self._data_cursor, bytearray())
        elif name in (".dword", ".word", ".half", ".byte"):
            if self._data_cursor is None:
                raise AssemblyError("%s outside .data" % name, line_no)
            width = {".dword": 8, ".word": 4, ".half": 2, ".byte": 1}[name]
            segment = self._current_segment()
            for value_text in _split_operands(arg):
                value = _parse_int(value_text, line_no) & ((1 << (8 * width)) - 1)
                segment.extend(value.to_bytes(width, "little"))
        elif name == ".zero":
            if self._data_cursor is None:
                raise AssemblyError(".zero outside .data", line_no)
            self._current_segment().extend(bytes(_parse_int(arg.strip(), line_no)))
        else:
            raise AssemblyError("unknown directive %r" % name, line_no)

    def _current_segment(self) -> bytearray:
        # Segments are keyed by their base; the cursor tracks the base of
        # the most recent .data directive.
        assert self._data_cursor is not None
        return self.data_segments[self._data_cursor]

    # ---- pass 2: encode ----

    def finish(self) -> Program:
        if not self.lines:
            raise AssemblyError("empty program")
        instructions = []
        for index, (line, line_no) in enumerate(self.lines):
            instructions.append(self._encode(line, line_no, index))
        for label, index in self.labels.items():
            if index > len(instructions):
                raise AssemblyError("label %r past end of program" % label)
        return Program(
            instructions=instructions,
            labels=dict(self.labels),
            data_segments={base: bytes(seg) for base, seg in self.data_segments.items()},
            name=self.name,
        )

    def _resolve_target(self, text: str, line_no: int) -> int:
        if text in self.labels:
            return self.labels[text]
        try:
            value = int(text, 0)
        except ValueError:
            raise AssemblyError("unknown label %r" % text, line_no) from None
        index, rem = divmod(value - CODE_BASE, INSTRUCTION_BYTES)
        if rem:
            raise AssemblyError("misaligned branch target %r" % text, line_no)
        return index

    def _encode(self, line: str, line_no: int, index: int) -> Instruction:
        mnemonic, operand_text = (line.split(None, 1) + [""])[:2]
        mnemonic = mnemonic.lower()
        ops = _split_operands(operand_text)
        pc = CODE_BASE + INSTRUCTION_BYTES * index
        make = lambda **kw: Instruction(  # noqa: E731 - local shorthand
            mnemonic=mnemonic, opclass=opclass_for(mnemonic), pc=pc, **kw)

        if mnemonic in ALU_RRR or mnemonic in MUL_OPS or mnemonic in DIV_OPS:
            self._arity(ops, 3, mnemonic, line_no)
            return make(rd=_reg(ops[0], line_no), rs1=_reg(ops[1], line_no),
                        rs2=_reg(ops[2], line_no))
        if mnemonic in ALU_RRI:
            self._arity(ops, 3, mnemonic, line_no)
            return make(rd=_reg(ops[0], line_no), rs1=_reg(ops[1], line_no),
                        imm=_parse_int(ops[2], line_no))
        if mnemonic in ("lui", "auipc"):
            self._arity(ops, 2, mnemonic, line_no)
            return make(rd=_reg(ops[0], line_no), imm=_parse_int(ops[1], line_no))
        if mnemonic in LOAD_OPS:
            self._arity(ops, 2, mnemonic, line_no)
            imm, base = self._mem_operand(ops[1], line_no)
            return make(rd=_reg(ops[0], line_no), rs1=base, imm=imm,
                        mem_size=MEM_SIZE[mnemonic])
        if mnemonic in STORE_OPS:
            self._arity(ops, 2, mnemonic, line_no)
            imm, base = self._mem_operand(ops[1], line_no)
            return make(rs2=_reg(ops[0], line_no), rs1=base, imm=imm,
                        mem_size=MEM_SIZE[mnemonic])
        if mnemonic in BRANCH_OPS:
            self._arity(ops, 3, mnemonic, line_no)
            return make(rs1=_reg(ops[0], line_no), rs2=_reg(ops[1], line_no),
                        target=self._resolve_target(ops[2], line_no))
        if mnemonic == "jal":
            if len(ops) == 1:
                ops = ["ra"] + ops
            self._arity(ops, 2, mnemonic, line_no)
            return make(rd=_reg(ops[0], line_no),
                        target=self._resolve_target(ops[1], line_no))
        if mnemonic == "jalr":
            if len(ops) == 1:
                ops = ["x0", ops[0], "0"]
            self._arity(ops, 3, mnemonic, line_no)
            return make(rd=_reg(ops[0], line_no), rs1=_reg(ops[1], line_no),
                        imm=_parse_int(ops[2], line_no))
        if mnemonic in FP_RRR or mnemonic in FP_CMP:
            self._arity(ops, 3, mnemonic, line_no)
            return make(rd=_reg(ops[0], line_no), rs1=_reg(ops[1], line_no),
                        rs2=_reg(ops[2], line_no))
        if mnemonic in FP_RR:
            self._arity(ops, 2, mnemonic, line_no)
            return make(rd=_reg(ops[0], line_no), rs1=_reg(ops[1], line_no))
        if mnemonic in ("fence", "ecall", "nop"):
            return make()
        raise AssemblyError("unknown mnemonic %r" % mnemonic, line_no)

    @staticmethod
    def _arity(ops: list[str], expected: int, mnemonic: str, line_no: int) -> None:
        if len(ops) != expected:
            raise AssemblyError(
                "%s expects %d operands, got %d" % (mnemonic, expected, len(ops)),
                line_no)

    def _mem_operand(self, text: str, line_no: int) -> tuple[int, int]:
        match = _MEM_OPERAND_RE.match(text.strip())
        if not match:
            raise AssemblyError("bad memory operand %r" % text, line_no)
        imm_text = match.group(1)
        imm = _parse_int(imm_text, line_no) if imm_text else 0
        return imm, _reg(match.group(2), line_no)


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a :class:`~repro.isa.program.Program`."""
    assembler = _Assembler(name)
    assembler.feed(source)
    return assembler.finish()
