"""Static instruction records and opcode classification.

The assembler produces one :class:`Instruction` per program location.
Semantics (what the instruction computes) live in
:mod:`repro.isa.interp`; timing (how long it executes) lives in the
pipeline model, keyed by :class:`OpClass`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional


class OpClass(enum.IntEnum):
    """Execution class of a µ-op, used for port binding and latency."""

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ALU = 3
    FP_MUL = 4
    FP_DIV = 5
    LOAD = 6
    STORE = 7
    BRANCH = 8
    JUMP = 9
    FENCE = 10
    SYSTEM = 11
    NOP = 12

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)

    @property
    def is_serializing(self) -> bool:
        return self in (OpClass.FENCE, OpClass.SYSTEM)


#: Fixed execution latencies (cycles) per class.  LOAD latency is
#: determined by the memory hierarchy; the value here is the
#: address-generation component.
EXECUTION_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ALU: 4,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 14,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.FENCE: 1,
    OpClass.SYSTEM: 1,
    OpClass.NOP: 1,
}


# Mnemonic groups.  The assembler validates operand shapes against
# these sets and the interpreter dispatches on mnemonic.
ALU_RRR = frozenset({
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
    "addw", "subw", "sllw", "srlw", "sraw",
})
ALU_RRI = frozenset({
    "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti", "sltiu",
    "addiw", "slliw", "srliw", "sraiw",
})
MUL_OPS = frozenset({"mul", "mulh", "mulhu", "mulhsu", "mulw"})
DIV_OPS = frozenset({"div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"})
LOAD_OPS = frozenset({"lb", "lbu", "lh", "lhu", "lw", "lwu", "ld", "flw", "fld"})
STORE_OPS = frozenset({"sb", "sh", "sw", "sd", "fsw", "fsd"})
BRANCH_OPS = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})
JUMP_OPS = frozenset({"jal", "jalr"})
FP_RRR = frozenset({
    "fadd.d", "fsub.d", "fmul.d", "fdiv.d", "fmin.d", "fmax.d", "fsgnj.d",
    "fadd.s", "fsub.s", "fmul.s", "fdiv.s",
})
FP_RR = frozenset({"fmv.d", "fcvt.d.l", "fcvt.l.d", "fcvt.d.w", "fcvt.w.d", "fabs.d", "fneg.d"})
FP_CMP = frozenset({"feq.d", "flt.d", "fle.d"})
MISC_OPS = frozenset({"lui", "auipc", "fence", "ecall", "nop"})

#: Memory access size in bytes, per load/store mnemonic.
MEM_SIZE = {
    "lb": 1, "lbu": 1, "sb": 1,
    "lh": 2, "lhu": 2, "sh": 2,
    "lw": 4, "lwu": 4, "sw": 4, "flw": 4, "fsw": 4,
    "ld": 8, "sd": 8, "fld": 8, "fsd": 8,
}

#: Loads whose result is sign-extended to 64 bits.
SIGNED_LOADS = frozenset({"lb", "lh", "lw", "ld"})


def opclass_for(mnemonic: str) -> OpClass:
    """Map a mnemonic to its :class:`OpClass`."""
    if mnemonic in ALU_RRR or mnemonic in ALU_RRI or mnemonic in ("lui", "auipc"):
        return OpClass.INT_ALU
    if mnemonic in MUL_OPS:
        return OpClass.INT_MUL
    if mnemonic in DIV_OPS:
        return OpClass.INT_DIV
    if mnemonic in LOAD_OPS:
        return OpClass.LOAD
    if mnemonic in STORE_OPS:
        return OpClass.STORE
    if mnemonic in BRANCH_OPS:
        return OpClass.BRANCH
    if mnemonic in JUMP_OPS:
        return OpClass.JUMP
    if mnemonic == "fence":
        return OpClass.FENCE
    if mnemonic == "ecall":
        return OpClass.SYSTEM
    if mnemonic == "nop":
        return OpClass.NOP
    if mnemonic in FP_CMP:
        return OpClass.FP_ALU
    if mnemonic.startswith("fdiv"):
        return OpClass.FP_DIV
    if mnemonic.startswith("fmul"):
        return OpClass.FP_MUL
    if mnemonic in FP_RRR or mnemonic in FP_RR:
        return OpClass.FP_ALU
    raise ValueError("unknown mnemonic: %r" % mnemonic)


@dataclass(frozen=True)
class Instruction:
    """A static (decoded) instruction.

    ``rd`` is the destination register flat index or ``None``; ``rs1``
    and ``rs2`` are source register flat indices or ``None``.  For
    memory operations ``rs1`` is the base register and ``imm`` the
    displacement; for stores ``rs2`` is the data register.  ``target``
    is a resolved instruction *index* for control transfers.
    """

    mnemonic: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    opclass: OpClass = field(default=OpClass.NOP)
    mem_size: int = 0
    pc: int = 0

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE

    @property
    def is_memory(self) -> bool:
        return self.opclass.is_memory

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    # ``cached_property`` (not ``property``): one static instruction is
    # shared by every dynamic µ-op at its PC, and µ-op construction
    # reads both attributes — computing them once per *static*
    # instruction instead of once per *dynamic* µ-op is a measurable
    # win for trace capture and binary trace replay.  (Safe on a frozen
    # dataclass: the cache writes to ``__dict__`` directly.)

    @cached_property
    def sources(self) -> tuple[int, ...]:
        """Source register indices, with x0 filtered out (never a dep)."""
        srcs = []
        if self.rs1 is not None and self.rs1 != 0:
            srcs.append(self.rs1)
        if self.rs2 is not None and self.rs2 != 0:
            srcs.append(self.rs2)
        return tuple(srcs)

    @cached_property
    def destination(self) -> Optional[int]:
        """Destination register index, or None (writes to x0 discarded)."""
        if self.rd is None or self.rd == 0:
            return None
        return self.rd

    def __str__(self) -> str:
        parts = [self.mnemonic]
        if self.is_memory:
            if self.is_load:
                parts.append("x%d, %d(x%d)" % (self.rd or 0, self.imm, self.rs1 or 0))
            else:
                parts.append("x%d, %d(x%d)" % (self.rs2 or 0, self.imm, self.rs1 or 0))
        else:
            ops = []
            if self.rd is not None:
                ops.append("r%d" % self.rd)
            if self.rs1 is not None:
                ops.append("r%d" % self.rs1)
            if self.rs2 is not None:
                ops.append("r%d" % self.rs2)
            if self.target is not None:
                ops.append("@%d" % self.target)
            elif self.imm:
                ops.append(str(self.imm))
            parts.append(", ".join(ops))
        return " ".join(p for p in parts if p)
