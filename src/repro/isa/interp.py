"""Functional interpreter for the RV64G subset.

The interpreter plays the role of the paper's modified Spike simulator:
it executes a program functionally and emits the dynamic µ-op stream —
with resolved effective addresses and branch outcomes — that is
injected into the cycle-level timing model.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.isa.instructions import SIGNED_LOADS, Instruction, OpClass
from repro.isa.program import INSTRUCTION_BYTES, Program
from repro.isa.registers import NUM_ARCH_REGS
from repro.isa.trace import MicroOp, Trace

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1
_PAGE_SHIFT = 12
_PAGE_SIZE = 1 << _PAGE_SHIFT
_PAGE_MASK = _PAGE_SIZE - 1

#: Initial stack pointer for interpreted kernels.
STACK_TOP = 0x8000_0000


class ExecutionError(RuntimeError):
    """Raised when a program performs an unsupported or invalid action."""


def _signed(value: int) -> int:
    return value - (1 << 64) if value >= (1 << 63) else value


def _signed32(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def _sext32(value: int) -> int:
    return _signed32(value) & _MASK64


def _bits_to_double(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _MASK64))[0]


def _double_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


class Memory:
    """Sparse byte-addressable memory backed by 4 KiB pages."""

    def __init__(self):
        self._pages: dict[int, bytearray] = {}

    def _page(self, number: int) -> bytearray:
        page = self._pages.get(number)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[number] = page
        return page

    def read(self, addr: int, size: int) -> int:
        """Little-endian unsigned read of ``size`` bytes."""
        page_no, off = addr >> _PAGE_SHIFT, addr & _PAGE_MASK
        if off + size <= _PAGE_SIZE:
            page = self._pages.get(page_no)
            if page is None:
                return 0
            return int.from_bytes(page[off:off + size], "little")
        value = 0
        for i in range(size):
            byte_addr = addr + i
            page = self._pages.get(byte_addr >> _PAGE_SHIFT)
            byte = page[byte_addr & _PAGE_MASK] if page is not None else 0
            value |= byte << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int) -> None:
        """Little-endian write of the low ``size`` bytes of ``value``."""
        value &= (1 << (8 * size)) - 1
        page_no, off = addr >> _PAGE_SHIFT, addr & _PAGE_MASK
        if off + size <= _PAGE_SIZE:
            self._page(page_no)[off:off + size] = value.to_bytes(size, "little")
            return
        for i in range(size):
            byte_addr = addr + i
            self._page(byte_addr >> _PAGE_SHIFT)[byte_addr & _PAGE_MASK] = (
                value >> (8 * i)) & 0xFF

    def load_segment(self, base: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            addr = base + i
            self._page(addr >> _PAGE_SHIFT)[addr & _PAGE_MASK] = byte

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * _PAGE_SIZE

    def snapshot(self) -> dict[int, bytes]:
        """Immutable image of resident memory, all-zero pages dropped.

        Absent pages read as zero, so two memories are architecturally
        identical iff their snapshots compare equal.  The differential
        checker (repro.analysis.differential) compares a fresh
        interpreter's snapshot against a replay of the pipeline's
        committed store drains.
        """
        return {number: bytes(page)
                for number, page in self._pages.items()
                if any(page)}


#: Functional-capture safety cap: the interpreter stops recording after
#: this many µ-ops even if the program never halts.  Distinct from the
#: *simulation* budget :data:`repro.config.DEFAULT_MAX_UOPS` (200k),
#: which bounds how much of a trace the cycle-accurate pipeline runs in
#: full detail by default.
DEFAULT_INTERP_MAX_UOPS = 2_000_000


class Interpreter:
    """Executes a :class:`~repro.isa.program.Program` and records a trace."""

    def __init__(self, program: Program, max_uops: int = DEFAULT_INTERP_MAX_UOPS,
                 record_stores: bool = False):
        self.program = program
        self.max_uops = max_uops
        self.regs: list[int] = [0] * NUM_ARCH_REGS
        self.regs[2] = STACK_TOP  # sp
        self.memory = Memory()
        for base, data in program.data_segments.items():
            self.memory.load_segment(base, data)
        self.halted = False
        self.uops: list[MicroOp] = []
        #: seq -> size-masked stored value, when ``record_stores`` — the
        #: ground truth the differential checker replays in drain order.
        self.store_values: Optional[dict[int, int]] = (
            {} if record_stores else None)

    # -- register helpers -------------------------------------------------

    def _write_reg(self, index: Optional[int], value: int) -> None:
        if index is not None and index != 0:
            self.regs[index] = value & _MASK64

    def _read(self, index: Optional[int]) -> int:
        return self.regs[index] if index is not None else 0

    # -- main loop ---------------------------------------------------------

    def run(self) -> Trace:
        """Execute until halt (``ecall``/fall-off-end) or the µ-op cap."""
        index = 0
        program = self.program
        n = len(program)
        while not self.halted and len(self.uops) < self.max_uops:
            if not 0 <= index < n:
                break  # fell off the end: implicit halt
            index = self._step(program.instructions[index], index)
        return Trace(self.uops, name=program.name)

    def _step(self, inst: Instruction, index: int) -> int:
        """Execute one instruction; return the next instruction index."""
        mnem = inst.mnemonic
        opclass = inst.opclass
        regs = self.regs
        next_index = index + 1

        if opclass is OpClass.LOAD or opclass is OpClass.STORE:
            addr = (regs[inst.rs1] + inst.imm) & _MASK64
            if opclass is OpClass.LOAD:
                value = self.memory.read(addr, inst.mem_size)
                if mnem in SIGNED_LOADS and inst.mem_size < 8:
                    sign_bit = 1 << (8 * inst.mem_size - 1)
                    if value & sign_bit:
                        value |= _MASK64 ^ ((1 << (8 * inst.mem_size)) - 1)
                self._write_reg(inst.rd, value)
            else:
                self.memory.write(addr, regs[inst.rs2], inst.mem_size)
                if self.store_values is not None:
                    self.store_values[len(self.uops)] = (
                        regs[inst.rs2] & ((1 << (8 * inst.mem_size)) - 1))
            self.uops.append(MicroOp(len(self.uops), inst, addr=addr))
            return next_index

        if opclass is OpClass.BRANCH:
            taken = _BRANCH_OPS[mnem](regs[inst.rs1], regs[inst.rs2])
            target = inst.target if taken else next_index
            self.uops.append(MicroOp(
                len(self.uops), inst, taken=taken,
                target_pc=self.program.pc_of(target) if 0 <= target <= len(self.program) else 0))
            return target

        if opclass is OpClass.JUMP:
            self._write_reg(inst.rd, inst.pc + INSTRUCTION_BYTES)
            if mnem == "jal":
                target = inst.target
            else:  # jalr
                target_pc = (regs[inst.rs1] + inst.imm) & _MASK64 & ~1
                if target_pc == 0:
                    self.halted = True  # convention: return to 0 halts
                    self.uops.append(MicroOp(len(self.uops), inst, taken=True))
                    return next_index
                target = self.program.index_of_pc(target_pc)
            self.uops.append(MicroOp(
                len(self.uops), inst, taken=True,
                target_pc=self.program.pc_of(target)))
            return target

        if opclass is OpClass.SYSTEM:  # ecall: halt
            self.halted = True
            self.uops.append(MicroOp(len(self.uops), inst))
            return next_index
        if opclass is OpClass.FENCE or opclass is OpClass.NOP:
            self.uops.append(MicroOp(len(self.uops), inst))
            return next_index

        self._execute_compute(inst, mnem)
        self.uops.append(MicroOp(len(self.uops), inst))
        return next_index

    # -- compute semantics ---------------------------------------------------

    def _execute_compute(self, inst: Instruction, mnem: str) -> None:
        regs = self.regs
        a = regs[inst.rs1] if inst.rs1 is not None else 0
        b = regs[inst.rs2] if inst.rs2 is not None else inst.imm & _MASK64
        handler = _COMPUTE_OPS.get(mnem)
        if handler is not None:
            self._write_reg(inst.rd, handler(a, b, inst.imm, inst) & _MASK64)
            return
        if mnem[0] == "f":
            self._execute_fp(inst, mnem)
            return
        raise ExecutionError("unimplemented mnemonic %r" % mnem)

    @staticmethod
    def _divide(mnem: str, a: int, b: int) -> int:
        return _divide(mnem, a, b)

    def _execute_fp(self, inst: Instruction, mnem: str) -> None:
        handler = _FP_OPS.get(mnem)
        if handler is None:
            raise ExecutionError("unimplemented FP mnemonic %r" % mnem)
        handler(self, inst)


# -- dispatch tables ---------------------------------------------------------
#
# One entry per mnemonic replaces the former if/elif chains: execution
# becomes a single dict probe regardless of where the mnemonic used to
# sit in the chain, which is the interpreter's hottest path during
# cold trace capture.

def _divide(mnem: str, a: int, b: int) -> int:
    wordy = mnem.endswith("w")
    unsigned = "u" in mnem[3:] or mnem in ("divu", "remu", "divuw", "remuw")
    if wordy:
        a = (a & _MASK32) if unsigned else _signed32(a) & _MASK64
        b = (b & _MASK32) if unsigned else _signed32(b) & _MASK64
    lhs = a if unsigned else _signed(a & _MASK64)
    rhs = b if unsigned else _signed(b & _MASK64)
    is_rem = mnem.startswith("rem")
    if rhs == 0:
        result = lhs if is_rem else -1  # RISC-V divide-by-zero semantics
    else:
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        result = lhs - quotient * rhs if is_rem else quotient
    return _sext32(result) if wordy else result & _MASK64


#: Branch comparators: mnemonic -> (rs1_value, rs2_value) -> taken.
_BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _signed(a) < _signed(b),
    "bge": lambda a, b: _signed(a) >= _signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

#: Integer compute semantics: mnemonic -> (a, b, imm, inst) -> result.
#: ``a`` is the rs1 value (0 if absent); ``b`` is the rs2 value, or
#: ``imm & _MASK64`` for immediate forms.  The caller masks the result.
_COMPUTE_OPS = {
    "add": lambda a, b, imm, inst: a + b,
    "addi": lambda a, b, imm, inst: a + imm,
    "sub": lambda a, b, imm, inst: a - b,
    "and": lambda a, b, imm, inst: a & b,
    "andi": lambda a, b, imm, inst: a & (imm & _MASK64),
    "or": lambda a, b, imm, inst: a | b,
    "ori": lambda a, b, imm, inst: a | (imm & _MASK64),
    "xor": lambda a, b, imm, inst: a ^ b,
    "xori": lambda a, b, imm, inst: a ^ (imm & _MASK64),
    "sll": lambda a, b, imm, inst: a << (b & 63),
    "slli": lambda a, b, imm, inst: a << (imm & 63),
    "srl": lambda a, b, imm, inst: a >> (b & 63),
    "srli": lambda a, b, imm, inst: a >> (imm & 63),
    "sra": lambda a, b, imm, inst: _signed(a) >> (b & 63),
    "srai": lambda a, b, imm, inst: _signed(a) >> (imm & 63),
    "slt": lambda a, b, imm, inst: 1 if _signed(a) < _signed(b) else 0,
    "slti": lambda a, b, imm, inst: 1 if _signed(a) < imm else 0,
    "sltu": lambda a, b, imm, inst: 1 if a < b else 0,
    "sltiu": lambda a, b, imm, inst: 1 if a < (imm & _MASK64) else 0,
    "addw": lambda a, b, imm, inst: _sext32(a + b),
    "addiw": lambda a, b, imm, inst: _sext32(a + imm),
    "subw": lambda a, b, imm, inst: _sext32(a - b),
    "sllw": lambda a, b, imm, inst: _sext32(a << (b & 31)),
    "slliw": lambda a, b, imm, inst: _sext32(a << (imm & 31)),
    "srlw": lambda a, b, imm, inst: _sext32((a & _MASK32) >> (b & 31)),
    "srliw": lambda a, b, imm, inst: _sext32((a & _MASK32) >> (imm & 31)),
    "sraw": lambda a, b, imm, inst: _sext32(_signed32(a) >> (b & 31)),
    "sraiw": lambda a, b, imm, inst: _sext32(_signed32(a) >> (imm & 31)),
    "lui": lambda a, b, imm, inst: _sext32(imm << 12),
    "auipc": lambda a, b, imm, inst: inst.pc + (imm << 12),
    "mul": lambda a, b, imm, inst: _signed(a) * _signed(b),
    "mulw": lambda a, b, imm, inst: _sext32(_signed(a) * _signed(b)),
    "mulh": lambda a, b, imm, inst: (_signed(a) * _signed(b)) >> 64,
    "mulhu": lambda a, b, imm, inst: (a * b) >> 64,
    "mulhsu": lambda a, b, imm, inst: (_signed(a) * b) >> 64,
}
for _name in ("div", "divw", "divu", "divuw",
              "rem", "remw", "remu", "remuw"):
    _COMPUTE_OPS[_name] = (
        lambda m: lambda a, b, imm, inst: _divide(m, a, b))(_name)
del _name


# -- FP dispatch -------------------------------------------------------------

def _fp_read(interp: "Interpreter", index: Optional[int]) -> float:
    return _bits_to_double(interp.regs[index]) if index is not None else 0.0


def _fp_arith(op):
    def handler(interp: "Interpreter", inst: Instruction) -> None:
        result = op(_fp_read(interp, inst.rs1), _fp_read(interp, inst.rs2))
        interp._write_reg(inst.rd, _double_to_bits(result))
    return handler


def _fp_compare(op):
    def handler(interp: "Interpreter", inst: Instruction) -> None:
        flag = op(_fp_read(interp, inst.rs1), _fp_read(interp, inst.rs2))
        interp._write_reg(inst.rd, 1 if flag else 0)
    return handler


def _fp_cvt_to_int(interp: "Interpreter", inst: Instruction) -> None:
    interp._write_reg(
        inst.rd, int(_bits_to_double(interp.regs[inst.rs1])) & _MASK64)


#: FP semantics: mnemonic -> (interpreter, inst) -> None (writes rd).
_FP_OPS = {
    "fcvt.d.l": lambda interp, inst: interp._write_reg(
        inst.rd, _double_to_bits(float(_signed(interp.regs[inst.rs1])))),
    "fcvt.d.w": lambda interp, inst: interp._write_reg(
        inst.rd, _double_to_bits(float(_signed32(interp.regs[inst.rs1])))),
    "fcvt.l.d": _fp_cvt_to_int,
    "fcvt.w.d": _fp_cvt_to_int,
    "feq.d": _fp_compare(lambda a, b: a == b),
    "flt.d": _fp_compare(lambda a, b: a < b),
    "fle.d": _fp_compare(lambda a, b: a <= b),
    "fsgnj.d": lambda interp, inst: interp._write_reg(
        inst.rd, (interp.regs[inst.rs1] & ((1 << 63) - 1))
        | (interp.regs[inst.rs2] & (1 << 63))),
    "fabs.d": lambda interp, inst: interp._write_reg(
        inst.rd, interp.regs[inst.rs1] & ((1 << 63) - 1)),
    "fneg.d": lambda interp, inst: interp._write_reg(
        inst.rd, interp.regs[inst.rs1] ^ (1 << 63)),
}
for _suffix in (".d", ".s"):
    _FP_OPS["fadd" + _suffix] = _fp_arith(lambda a, b: a + b)
    _FP_OPS["fsub" + _suffix] = _fp_arith(lambda a, b: a - b)
    _FP_OPS["fmul" + _suffix] = _fp_arith(lambda a, b: a * b)
    _FP_OPS["fdiv" + _suffix] = _fp_arith(
        lambda a, b: a / b if b != 0.0 else float("inf"))
_FP_OPS["fmin.d"] = _fp_arith(min)
_FP_OPS["fmax.d"] = _fp_arith(max)
del _suffix


def run_program(program: Program,
                max_uops: int = DEFAULT_INTERP_MAX_UOPS) -> Trace:
    """Convenience wrapper: interpret ``program`` and return its trace."""
    return Interpreter(program, max_uops=max_uops).run()
