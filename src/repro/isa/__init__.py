"""RISC-V (RV64G subset) ISA substrate.

This package provides everything needed to turn small assembly kernels
into dynamic µ-op traces with real effective addresses:

* :mod:`repro.isa.registers` — architectural register file naming.
* :mod:`repro.isa.instructions` — static instruction records and opcode
  classes.
* :mod:`repro.isa.assembler` — a symbolic assembler (labels, pseudo-ops).
* :mod:`repro.isa.program` — assembled program container.
* :mod:`repro.isa.interp` — a functional interpreter that executes a
  program and emits a :class:`repro.isa.trace.Trace`.
* :mod:`repro.isa.trace` — the dynamic :class:`MicroOp` record consumed
  by the fusion analyses and the cycle-level pipeline.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.decoder import DecodeError, decode
from repro.isa.instructions import Instruction, OpClass
from repro.isa.interp import ExecutionError, Interpreter, run_program
from repro.isa.program import Program
from repro.isa.registers import (
    FP_REG_BASE,
    NUM_ARCH_REGS,
    reg_index,
    reg_name,
)
from repro.isa.trace import MicroOp, Trace
from repro.isa.trace_io import (
    TraceFormatError,
    from_spike_log,
    load_spike_log,
    load_trace,
    load_trace_binary,
    save_trace,
    save_trace_binary,
)

__all__ = [
    "AssemblyError",
    "DecodeError",
    "decode",
    "from_spike_log",
    "load_spike_log",
    "load_trace",
    "load_trace_binary",
    "save_trace",
    "save_trace_binary",
    "TraceFormatError",
    "ExecutionError",
    "FP_REG_BASE",
    "Instruction",
    "Interpreter",
    "MicroOp",
    "NUM_ARCH_REGS",
    "OpClass",
    "Program",
    "Trace",
    "assemble",
    "reg_index",
    "reg_name",
    "run_program",
]
