"""RV64 binary instruction decoder.

Decodes raw 32-bit RISC-V encodings into the same
:class:`~repro.isa.instructions.Instruction` records the assembler
produces, so externally captured traces — e.g. Spike commit logs, the
paper's own methodology — can be injected into the timing model (see
:mod:`repro.isa.trace_io`).

Covers RV64IM plus the F/D loads and stores (the subset the fusion
analyses care about: every load/store/branch/ALU shape).  Compressed
(RVC) encodings are rejected with a clear error; FP arithmetic decodes
to a generic FP µ-op class.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, MEM_SIZE, opclass_for


class DecodeError(ValueError):
    """Raised for encodings outside the supported subset."""


def _bits(word: int, high: int, low: int) -> int:
    return (word >> low) & ((1 << (high - low + 1)) - 1)


def _sext(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _imm_i(word: int) -> int:
    return _sext(_bits(word, 31, 20), 12)


def _imm_s(word: int) -> int:
    return _sext((_bits(word, 31, 25) << 5) | _bits(word, 11, 7), 12)


def _imm_b(word: int) -> int:
    imm = (_bits(word, 31, 31) << 12) | (_bits(word, 7, 7) << 11) \
        | (_bits(word, 30, 25) << 5) | (_bits(word, 11, 8) << 1)
    return _sext(imm, 13)


def _imm_u(word: int) -> int:
    return _bits(word, 31, 12)


def _imm_j(word: int) -> int:
    imm = (_bits(word, 31, 31) << 20) | (_bits(word, 19, 12) << 12) \
        | (_bits(word, 20, 20) << 11) | (_bits(word, 30, 21) << 1)
    return _sext(imm, 21)


_LOADS = {0b000: "lb", 0b001: "lh", 0b010: "lw", 0b011: "ld",
          0b100: "lbu", 0b101: "lhu", 0b110: "lwu"}
_FP_LOADS = {0b010: "flw", 0b011: "fld"}
_STORES = {0b000: "sb", 0b001: "sh", 0b010: "sw", 0b011: "sd"}
_FP_STORES = {0b010: "fsw", 0b011: "fsd"}
_BRANCHES = {0b000: "beq", 0b001: "bne", 0b100: "blt", 0b101: "bge",
             0b110: "bltu", 0b111: "bgeu"}
_OP_IMM = {0b000: "addi", 0b010: "slti", 0b011: "sltiu", 0b100: "xori",
           0b110: "ori", 0b111: "andi"}
_OP = {  # funct3 -> (funct7==0 mnemonic, funct7==0x20 mnemonic)
    0b000: ("add", "sub"), 0b001: ("sll", None), 0b010: ("slt", None),
    0b011: ("sltu", None), 0b100: ("xor", None), 0b101: ("srl", "sra"),
    0b110: ("or", None), 0b111: ("and", None),
}
_MULDIV = {0b000: "mul", 0b001: "mulh", 0b010: "mulhsu", 0b011: "mulhu",
           0b100: "div", 0b101: "divu", 0b110: "rem", 0b111: "remu"}
_OP_32 = {0b000: ("addw", "subw"), 0b001: ("sllw", None),
          0b101: ("srlw", "sraw")}
_MULDIV_32 = {0b000: "mulw", 0b100: "divw", 0b101: "divuw",
              0b110: "remw", 0b111: "remuw"}


def decode(word: int, pc: int = 0) -> Instruction:
    """Decode one 32-bit instruction word at ``pc``.

    Branch/jump ``target`` fields hold *PC-relative byte offsets*
    resolved by the caller (a standalone decoder cannot know the
    program's instruction indexing); see trace_io for how Spike logs
    resolve direction from the committed PC stream instead.
    """
    word &= 0xFFFFFFFF
    if word & 0b11 != 0b11:
        raise DecodeError(
            "compressed (RVC) encoding 0x%04x at 0x%x is not supported; "
            "build traces with rv64g (no 'c') binaries" % (word & 0xFFFF, pc))
    opcode = _bits(word, 6, 0)
    rd = _bits(word, 11, 7)
    funct3 = _bits(word, 14, 12)
    rs1 = _bits(word, 19, 15)
    rs2 = _bits(word, 24, 20)
    funct7 = _bits(word, 31, 25)

    def make(mnemonic, **kwargs):
        return Instruction(mnemonic=mnemonic, opclass=opclass_for(mnemonic),
                           pc=pc, mem_size=MEM_SIZE.get(mnemonic, 0),
                           **kwargs)

    if opcode == 0x03:                                   # LOAD
        mnemonic = _LOADS.get(funct3)
        if mnemonic is None:
            raise DecodeError("bad load funct3 %d" % funct3)
        return make(mnemonic, rd=rd, rs1=rs1, imm=_imm_i(word))
    if opcode == 0x07:                                   # LOAD-FP
        mnemonic = _FP_LOADS.get(funct3)
        if mnemonic is None:
            raise DecodeError("bad fp load funct3 %d" % funct3)
        return make(mnemonic, rd=32 + rd, rs1=rs1, imm=_imm_i(word))
    if opcode == 0x23:                                   # STORE
        mnemonic = _STORES.get(funct3)
        if mnemonic is None:
            raise DecodeError("bad store funct3 %d" % funct3)
        return make(mnemonic, rs1=rs1, rs2=rs2, imm=_imm_s(word))
    if opcode == 0x27:                                   # STORE-FP
        mnemonic = _FP_STORES.get(funct3)
        if mnemonic is None:
            raise DecodeError("bad fp store funct3 %d" % funct3)
        return make(mnemonic, rs1=rs1, rs2=32 + rs2, imm=_imm_s(word))
    if opcode == 0x63:                                   # BRANCH
        mnemonic = _BRANCHES.get(funct3)
        if mnemonic is None:
            raise DecodeError("bad branch funct3 %d" % funct3)
        return make(mnemonic, rs1=rs1, rs2=rs2, imm=_imm_b(word))
    if opcode == 0x6F:                                   # JAL
        return make("jal", rd=rd, imm=_imm_j(word))
    if opcode == 0x67:                                   # JALR
        return make("jalr", rd=rd, rs1=rs1, imm=_imm_i(word))
    if opcode == 0x37:                                   # LUI
        return make("lui", rd=rd, imm=_imm_u(word))
    if opcode == 0x17:                                   # AUIPC
        return make("auipc", rd=rd, imm=_imm_u(word))
    if opcode == 0x13:                                   # OP-IMM
        if funct3 == 0b001:
            return make("slli", rd=rd, rs1=rs1, imm=_bits(word, 25, 20))
        if funct3 == 0b101:
            mnemonic = "srai" if funct7 & 0x20 else "srli"
            return make(mnemonic, rd=rd, rs1=rs1, imm=_bits(word, 25, 20))
        return make(_OP_IMM[funct3], rd=rd, rs1=rs1, imm=_imm_i(word))
    if opcode == 0x1B:                                   # OP-IMM-32
        if funct3 == 0b000:
            return make("addiw", rd=rd, rs1=rs1, imm=_imm_i(word))
        if funct3 == 0b001:
            return make("slliw", rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 0b101:
            mnemonic = "sraiw" if funct7 & 0x20 else "srliw"
            return make(mnemonic, rd=rd, rs1=rs1, imm=rs2)
        raise DecodeError("bad OP-IMM-32 funct3 %d" % funct3)
    if opcode == 0x33:                                   # OP
        if funct7 == 0x01:
            return make(_MULDIV[funct3], rd=rd, rs1=rs1, rs2=rs2)
        base, alt = _OP[funct3]
        mnemonic = alt if funct7 == 0x20 else base
        if mnemonic is None:
            raise DecodeError("bad OP funct7 0x%x" % funct7)
        return make(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if opcode == 0x3B:                                   # OP-32
        if funct7 == 0x01:
            mnemonic = _MULDIV_32.get(funct3)
            if mnemonic is None:
                raise DecodeError("bad MULDIV-32 funct3 %d" % funct3)
            return make(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        pair = _OP_32.get(funct3)
        if pair is None:
            raise DecodeError("bad OP-32 funct3 %d" % funct3)
        base, alt = pair
        mnemonic = alt if funct7 == 0x20 else base
        if mnemonic is None:
            raise DecodeError("bad OP-32 funct7 0x%x" % funct7)
        return make(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if opcode == 0x0F:                                   # MISC-MEM
        return make("fence")
    if opcode == 0x73:                                   # SYSTEM
        return make("ecall")
    if opcode == 0x53:                                   # OP-FP (generic)
        return make("fadd.d", rd=32 + rd, rs1=32 + rs1, rs2=32 + rs2)
    raise DecodeError("unsupported opcode 0x%02x at pc 0x%x" % (opcode, pc))
