"""Trace import/export.

Two capabilities downstream users need to run the model on *their*
programs:

* **Spike commit logs** — :func:`from_spike_log` ingests the output of
  ``spike -l --log-commits`` (the paper's own functional front end),
  decoding each committed instruction word with
  :mod:`repro.isa.decoder`, attaching the logged memory addresses, and
  resolving branch directions from the committed PC stream.
* **Portable JSON-lines traces** — :func:`save_trace` /
  :func:`load_trace` round-trip a :class:`~repro.isa.trace.Trace`
  through a simple line-per-µ-op format so traces can be captured once
  and replayed across configurations.
* **Compact binary traces** — :func:`save_trace_binary` /
  :func:`load_trace_binary` are the fast path used by the persistent
  trace store (:mod:`repro.workloads.trace_store`): struct-packed
  fixed-width µ-op records referencing an interned static-instruction
  table, zlib-compressed and CRC-checked.  JSON-lines stays the
  portable interchange format; the binary format is a cache encoding
  and may change between versions (readers reject unknown versions).
"""

from __future__ import annotations

import json
import re
import struct
import sys
import zlib
from collections.abc import Iterable
from typing import BinaryIO, Optional, TextIO, Union

from repro.isa.decoder import decode
from repro.isa.instructions import Instruction, opclass_for
from repro.isa.program import INSTRUCTION_BYTES
from repro.isa.trace import MicroOp, Trace

#: One committed instruction in a `spike -l --log-commits` log, e.g.::
#:
#:     core   0: 3 0x0000000080001a4a (0x00b2b023) mem 0x80001110 0x0b
#:     core   0: 3 0x000000008000010c (0x0000b303) x6  0x0b mem 0x80001110
_SPIKE_LINE = re.compile(
    r"core\s+\d+:\s+(?:\d+\s+)?0x(?P<pc>[0-9a-fA-F]+)\s+"
    r"\(0x(?P<word>[0-9a-fA-F]+)\)"
    r"(?P<rest>.*)$")
_SPIKE_MEM = re.compile(r"\bmem\s+0x(?P<addr>[0-9a-fA-F]+)")


class TraceFormatError(ValueError):
    """Raised for unparseable trace inputs."""


#: Version of the JSON-lines interchange format written by
#: :func:`save_trace`.  Bump on any incompatible record change;
#: :func:`load_trace` rejects files claiming a different version
#: instead of silently misparsing them.
TRACE_JSON_VERSION = 1


def from_spike_log(lines: Iterable[str], name: str = "spike",
                   max_uops: Optional[int] = None) -> Trace:
    """Build a :class:`Trace` from a Spike commit log.

    Branch/jump direction and targets come from the *next* committed
    PC, exactly like the paper's Spike-injection methodology.  Lines
    that do not look like commit records (boot noise, interrupts) are
    skipped.
    """
    records = []
    for line in lines:
        match = _SPIKE_LINE.search(line)
        if match is None:
            continue
        pc = int(match.group("pc"), 16)
        word = int(match.group("word"), 16)
        mem = _SPIKE_MEM.search(match.group("rest"))
        addr = int(mem.group("addr"), 16) if mem else 0
        records.append((pc, word, addr))
        if max_uops is not None and len(records) == max_uops + 1:
            # Collect exactly ONE record beyond the cap on purpose: the
            # direction/target of the last kept µ-op, if it is a
            # control transfer, is resolved from the *next* committed
            # PC.  The lookahead record itself never becomes a µ-op —
            # the emission loop below stops at ``max_uops``.
            break

    uops: list[MicroOp] = []
    for index, (pc, word, addr) in enumerate(records):
        if max_uops is not None and len(uops) >= max_uops:
            break
        inst = decode(word, pc=pc)
        if inst.is_memory:
            uops.append(MicroOp(len(uops), inst, addr=addr))
        elif inst.opclass.is_control:
            next_pc = records[index + 1][0] if index + 1 < len(records) \
                else pc + INSTRUCTION_BYTES
            taken = next_pc != pc + INSTRUCTION_BYTES
            uops.append(MicroOp(len(uops), inst, taken=taken,
                                target_pc=next_pc))
        else:
            uops.append(MicroOp(len(uops), inst))
    return Trace(uops, name=name)


def load_spike_log(path: str, name: Optional[str] = None,
                   max_uops: Optional[int] = None) -> Trace:
    """Read a Spike commit-log file into a trace."""
    with open(path) as handle:
        return from_spike_log(handle, name=name or path, max_uops=max_uops)


# --------------------------------------------------------------- JSON lines --

def save_trace(trace: Trace, target: Union[str, TextIO]) -> None:
    """Write a trace as JSON-lines (one µ-op per line)."""
    own = isinstance(target, str)
    handle = open(target, "w") if own else target
    try:
        handle.write(json.dumps({"format": "repro-trace",
                                 "version": TRACE_JSON_VERSION,
                                 "name": trace.name}) + "\n")
        for uop in trace:
            inst = uop.inst
            record = {
                "pc": uop.pc, "mnemonic": inst.mnemonic,
                "rd": inst.rd, "rs1": inst.rs1, "rs2": inst.rs2,
                "imm": inst.imm,
            }
            if uop.is_memory:
                record["addr"] = uop.addr
            if uop.is_control:
                record["taken"] = uop.taken
                record["target_pc"] = uop.target_pc
            handle.write(json.dumps(record) + "\n")
    finally:
        if own:
            handle.close()


def load_trace(source: Union[str, TextIO]) -> Trace:
    """Read a JSON-lines trace written by :func:`save_trace`."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        header = json.loads(handle.readline())
        if header.get("format") != "repro-trace":
            raise TraceFormatError("not a repro trace file")
        version = header.get("version")
        if version != TRACE_JSON_VERSION:
            raise TraceFormatError(
                "unsupported repro-trace version %r (this reader "
                "understands version %d)" % (version, TRACE_JSON_VERSION))
        static_cache = {}
        uops: list[MicroOp] = []
        for line in handle:
            record = json.loads(line)
            key = (record["mnemonic"], record["rd"], record["rs1"],
                   record["rs2"], record["imm"], record["pc"])
            inst = static_cache.get(key)
            if inst is None:
                from repro.isa.instructions import MEM_SIZE
                inst = Instruction(
                    mnemonic=record["mnemonic"],
                    rd=record["rd"], rs1=record["rs1"], rs2=record["rs2"],
                    imm=record["imm"],
                    opclass=opclass_for(record["mnemonic"]),
                    mem_size=MEM_SIZE.get(record["mnemonic"], 0),
                    pc=record["pc"])
                static_cache[key] = inst
            uops.append(MicroOp(
                len(uops), inst, addr=record.get("addr", 0),
                taken=record.get("taken", False),
                target_pc=record.get("target_pc", 0)))
        return Trace(uops, name=header.get("name", "trace"))
    finally:
        if own:
            handle.close()


# ------------------------------------------------------------------ binary --
#
# Layout (all little-endian)::
#
#     magic      4s   b"RPTB"
#     version    H    TRACE_BINARY_VERSION
#     name_len   H    + UTF-8 name bytes
#     num_insts  I    static-instruction table length
#     num_uops   I    µ-op record count
#     body_len   I    uncompressed body length in bytes
#     body_crc   I    zlib.crc32 of the uncompressed body
#     body            zlib-compressed
#
# The body is the static table (variable-width records: mnemonic,
# registers, immediate, branch target, pc) followed by ``num_uops``
# fixed-width µ-op records (``_UOP_STRUCT``) that reference static
# entries by index — the binary analogue of the JSON loader's
# ``static_cache`` interning, made explicit in the format.

TRACE_BINARY_MAGIC = b"RPTB"
TRACE_BINARY_VERSION = 1

_HEADER_STRUCT = struct.Struct("<4sHHIIII")
#: One µ-op: static-table index, effective address, resolved target pc,
#: flags (bit 0: branch/jump taken).
_UOP_STRUCT = struct.Struct("<IQQB")
#: One static instruction minus its mnemonic: rd/rs1/rs2 (-1 = none),
#: immediate, branch-target index (-1 = none), pc.
_INST_STRUCT = struct.Struct("<bbbqqQ")


def _encode_body(trace: Trace) -> "tuple[bytes, list[Instruction]]":
    """The uncompressed body plus the interned static table."""
    table: list[Instruction] = []
    index_of: dict = {}
    chunks: list[bytes] = []
    uop_records: list[bytes] = []
    for uop in trace:
        inst = uop.inst
        index = index_of.get(id(inst))
        if index is None:
            # Distinct objects with equal fields intern to one entry.
            key = (inst.mnemonic, inst.rd, inst.rs1, inst.rs2,
                   inst.imm, inst.target, inst.pc)
            index = index_of.get(key)
            if index is None:
                index = len(table)
                table.append(inst)
                index_of[key] = index
            index_of[id(inst)] = index
        flags = 1 if uop.taken else 0
        uop_records.append(_UOP_STRUCT.pack(index, uop.addr,
                                            uop.target_pc, flags))
    for inst in table:
        mnemonic = inst.mnemonic.encode("ascii")
        chunks.append(struct.pack("<B", len(mnemonic)))
        chunks.append(mnemonic)
        chunks.append(_INST_STRUCT.pack(
            -1 if inst.rd is None else inst.rd,
            -1 if inst.rs1 is None else inst.rs1,
            -1 if inst.rs2 is None else inst.rs2,
            inst.imm,
            -1 if inst.target is None else inst.target,
            inst.pc))
    chunks.extend(uop_records)
    return b"".join(chunks), table


def save_trace_binary(trace: Trace, target: Union[str, BinaryIO]) -> None:
    """Write a trace in the compact binary cache format."""
    body, table = _encode_body(trace)
    name = trace.name.encode("utf-8")
    header = _HEADER_STRUCT.pack(
        TRACE_BINARY_MAGIC, TRACE_BINARY_VERSION, len(name),
        len(table), len(trace), len(body), zlib.crc32(body))
    payload = header + name + zlib.compress(body, 1)
    if isinstance(target, str):
        with open(target, "wb") as handle:
            handle.write(payload)
    else:
        target.write(payload)


def load_trace_binary(source: Union[str, bytes, BinaryIO]) -> Trace:
    """Read a trace written by :func:`save_trace_binary`.

    Raises :class:`TraceFormatError` on any structural problem — bad
    magic, unknown version, truncation, or a CRC mismatch — so callers
    (the trace store) can treat the file as a cache miss and rebuild.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            payload = handle.read()
    elif isinstance(source, bytes):
        payload = source
    else:
        payload = source.read()

    if len(payload) < _HEADER_STRUCT.size:
        raise TraceFormatError("truncated binary trace header")
    (magic, version, name_len, num_insts, num_uops,
     body_len, body_crc) = _HEADER_STRUCT.unpack_from(payload)
    if magic != TRACE_BINARY_MAGIC:
        raise TraceFormatError("not a repro binary trace")
    if version != TRACE_BINARY_VERSION:
        raise TraceFormatError(
            "unsupported binary trace version %d (this reader "
            "understands version %d)" % (version, TRACE_BINARY_VERSION))
    offset = _HEADER_STRUCT.size
    name = payload[offset:offset + name_len].decode("utf-8")
    try:
        body = zlib.decompress(payload[offset + name_len:])
    except zlib.error as exc:
        raise TraceFormatError("corrupt binary trace body: %s" % exc) from exc
    if len(body) != body_len or zlib.crc32(body) != body_crc:
        raise TraceFormatError("binary trace body failed CRC check")

    from repro.isa.instructions import MEM_SIZE
    table: list[Instruction] = []
    pos = 0
    try:
        for _ in range(num_insts):
            mnem_len = body[pos]
            pos += 1
            mnemonic = sys.intern(
                body[pos:pos + mnem_len].decode("ascii"))
            pos += mnem_len
            rd, rs1, rs2, imm, target, pc = _INST_STRUCT.unpack_from(
                body, pos)
            pos += _INST_STRUCT.size
            table.append(Instruction(
                mnemonic=mnemonic,
                rd=None if rd < 0 else rd,
                rs1=None if rs1 < 0 else rs1,
                rs2=None if rs2 < 0 else rs2,
                imm=imm,
                target=None if target < 0 else target,
                opclass=opclass_for(mnemonic),
                mem_size=MEM_SIZE.get(mnemonic, 0),
                pc=pc))
    except (IndexError, struct.error, UnicodeDecodeError, ValueError) as exc:
        raise TraceFormatError("corrupt static table: %s" % exc) from exc
    if pos + num_uops * _UOP_STRUCT.size != len(body):
        raise TraceFormatError("binary trace µ-op section length mismatch")

    uops: list[MicroOp] = []
    append = uops.append
    try:
        for seq, (index, addr, target_pc, flags) in enumerate(
                _UOP_STRUCT.iter_unpack(body[pos:])):
            append(MicroOp(seq, table[index], addr=addr,
                           taken=bool(flags & 1), target_pc=target_pc))
    except IndexError:
        raise TraceFormatError("µ-op references unknown static entry") from None
    return Trace(uops, name=name)


def _read_payload(source: Union[str, bytes, BinaryIO]) -> bytes:
    if isinstance(source, str):
        with open(source, "rb") as handle:
            return handle.read()
    if isinstance(source, bytes):
        return source
    return source.read()


def _parse_static_table(body, pos: int, num_insts: int) -> "tuple[list[Instruction], int]":
    """Decode the interned static table at ``body[pos:]``."""
    from repro.isa.instructions import MEM_SIZE
    table: list[Instruction] = []
    try:
        for _ in range(num_insts):
            mnem_len = body[pos]
            pos += 1
            mnemonic = sys.intern(
                bytes(body[pos:pos + mnem_len]).decode("ascii"))
            pos += mnem_len
            rd, rs1, rs2, imm, target, pc = _INST_STRUCT.unpack_from(
                body, pos)
            pos += _INST_STRUCT.size
            table.append(Instruction(
                mnemonic=mnemonic,
                rd=None if rd < 0 else rd,
                rs1=None if rs1 < 0 else rs1,
                rs2=None if rs2 < 0 else rs2,
                imm=imm,
                target=None if target < 0 else target,
                opclass=opclass_for(mnemonic),
                mem_size=MEM_SIZE.get(mnemonic, 0),
                pc=pc))
    except (IndexError, struct.error, UnicodeDecodeError, ValueError) as exc:
        raise TraceFormatError("corrupt static table: %s" % exc) from exc
    return table, pos


def load_trace_binary_segment(source: Union[str, bytes, BinaryIO],
                              start: int, count: int) -> Trace:
    """Read µ-ops ``[start, start + count)`` of a binary trace.

    The segment comes back *renumbered* — sequence numbers 0..count-1 —
    because the pipeline core indexes its trace list by µ-op sequence
    number (``_flush_from``), so a standalone segment must be
    self-consistent.  The original window is recorded in the trace
    name (``name[start:stop]``).

    zlib streams have no random access, so the whole body is still
    *decompressed* linearly (cheap, bytes only, incremental via
    ``decompressobj`` with bounded buffering) — what this reader avoids
    is materialising the per-µ-op ``MicroOp`` objects outside the
    requested window, which dominate both time and memory for
    multi-million-µop traces.  The body CRC and length are verified
    over the full stream, exactly like :func:`load_trace_binary`.
    """
    if start < 0 or count < 0:
        raise ValueError("segment start/count must be non-negative")
    payload = _read_payload(source)
    if len(payload) < _HEADER_STRUCT.size:
        raise TraceFormatError("truncated binary trace header")
    (magic, version, name_len, num_insts, num_uops,
     body_len, body_crc) = _HEADER_STRUCT.unpack_from(payload)
    if magic != TRACE_BINARY_MAGIC:
        raise TraceFormatError("not a repro binary trace")
    if version != TRACE_BINARY_VERSION:
        raise TraceFormatError(
            "unsupported binary trace version %d (this reader "
            "understands version %d)" % (version, TRACE_BINARY_VERSION))
    if start + count > num_uops:
        raise ValueError(
            "segment [%d:%d) out of range for a %d-µop trace"
            % (start, start + count, num_uops))
    offset = _HEADER_STRUCT.size
    name = payload[offset:offset + name_len].decode("utf-8")

    decomp = zlib.decompressobj()
    comp = memoryview(payload)[offset + name_len:]
    chunk_size = 1 << 20
    chunks = (comp[i:i + chunk_size] for i in range(0, len(comp), chunk_size))
    crc = 0
    total = 0

    def pull() -> Optional[bytes]:
        """Next decompressed chunk (CRC/length updated), or None at EOF."""
        nonlocal crc, total
        for piece in chunks:
            try:
                data = decomp.decompress(bytes(piece))
            except zlib.error as exc:
                raise TraceFormatError("corrupt binary trace body: %s" % exc) from exc
            if data:
                crc = zlib.crc32(data, crc)
                total += len(data)
                return data
        data = decomp.flush()
        if data:
            crc = zlib.crc32(data, crc)
            total += len(data)
            return data
        return None

    buf = bytearray()
    base = 0  # absolute body offset of buf[0]

    def ensure(upto: int) -> None:
        """Grow ``buf`` until it covers body offset ``upto`` (or EOF)."""
        while base + len(buf) < upto:
            data = pull()
            if data is None:
                break
            buf.extend(data)

    # The static table is variable-width: buffer until it parses.
    # 1 length byte + mnemonic (< 256) + fixed record, per entry.
    ensure(num_insts * (1 + 255 + _INST_STRUCT.size))
    table, pos = _parse_static_table(buf, 0, num_insts)

    usize = _UOP_STRUCT.size
    seg_start = pos + start * usize
    seg_end = seg_start + count * usize

    # Skip phase: discard whole chunks strictly before the segment.
    del buf[:pos]
    base = pos
    while base + len(buf) <= seg_start:
        base += len(buf)
        buf.clear()
        data = pull()
        if data is None:
            break
        if base + len(data) <= seg_start:
            base += len(data)
        else:
            buf.extend(data)
    ensure(seg_end)
    if base + len(buf) < seg_end:
        raise TraceFormatError("binary trace body truncated inside segment")
    records = bytes(buf[seg_start - base:seg_end - base])

    # Drain the remainder so the CRC / length check covers the stream.
    while pull() is not None:
        pass
    if not decomp.eof:
        # decompressobj silently tolerates a truncated stream (unlike
        # one-shot zlib.decompress); check explicitly.
        raise TraceFormatError("corrupt binary trace body: truncated stream")
    if total != body_len or crc != body_crc:
        raise TraceFormatError("binary trace body failed CRC check")

    uops: list[MicroOp] = []
    append = uops.append
    try:
        for seq, (index, addr, target_pc, flags) in enumerate(
                _UOP_STRUCT.iter_unpack(records)):
            append(MicroOp(seq, table[index], addr=addr,
                           taken=bool(flags & 1), target_pc=target_pc))
    except IndexError:
        raise TraceFormatError("µ-op references unknown static entry") from None
    return Trace(uops, name="%s[%d:%d]" % (name, start, start + count))
