"""Trace import/export.

Two capabilities downstream users need to run the model on *their*
programs:

* **Spike commit logs** — :func:`from_spike_log` ingests the output of
  ``spike -l --log-commits`` (the paper's own functional front end),
  decoding each committed instruction word with
  :mod:`repro.isa.decoder`, attaching the logged memory addresses, and
  resolving branch directions from the committed PC stream.
* **Portable JSON-lines traces** — :func:`save_trace` /
  :func:`load_trace` round-trip a :class:`~repro.isa.trace.Trace`
  through a simple line-per-µ-op format so traces can be captured once
  and replayed across configurations.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, List, Optional, TextIO, Union

from repro.isa.decoder import decode
from repro.isa.instructions import Instruction, opclass_for
from repro.isa.program import INSTRUCTION_BYTES
from repro.isa.trace import MicroOp, Trace

#: One committed instruction in a `spike -l --log-commits` log, e.g.::
#:
#:     core   0: 3 0x0000000080001a4a (0x00b2b023) mem 0x80001110 0x0b
#:     core   0: 3 0x000000008000010c (0x0000b303) x6  0x0b mem 0x80001110
_SPIKE_LINE = re.compile(
    r"core\s+\d+:\s+(?:\d+\s+)?0x(?P<pc>[0-9a-fA-F]+)\s+"
    r"\(0x(?P<word>[0-9a-fA-F]+)\)"
    r"(?P<rest>.*)$")
_SPIKE_MEM = re.compile(r"\bmem\s+0x(?P<addr>[0-9a-fA-F]+)")


class TraceFormatError(ValueError):
    """Raised for unparseable trace inputs."""


def from_spike_log(lines: Iterable[str], name: str = "spike",
                   max_uops: Optional[int] = None) -> Trace:
    """Build a :class:`Trace` from a Spike commit log.

    Branch/jump direction and targets come from the *next* committed
    PC, exactly like the paper's Spike-injection methodology.  Lines
    that do not look like commit records (boot noise, interrupts) are
    skipped.
    """
    records = []
    for line in lines:
        match = _SPIKE_LINE.search(line)
        if match is None:
            continue
        pc = int(match.group("pc"), 16)
        word = int(match.group("word"), 16)
        mem = _SPIKE_MEM.search(match.group("rest"))
        addr = int(mem.group("addr"), 16) if mem else 0
        records.append((pc, word, addr))
        if max_uops is not None and len(records) > max_uops:
            break

    uops: List[MicroOp] = []
    for index, (pc, word, addr) in enumerate(records):
        if max_uops is not None and len(uops) >= max_uops:
            break
        inst = decode(word, pc=pc)
        if inst.is_memory:
            uops.append(MicroOp(len(uops), inst, addr=addr))
        elif inst.opclass.is_control:
            next_pc = records[index + 1][0] if index + 1 < len(records) \
                else pc + INSTRUCTION_BYTES
            taken = next_pc != pc + INSTRUCTION_BYTES
            uops.append(MicroOp(len(uops), inst, taken=taken,
                                target_pc=next_pc))
        else:
            uops.append(MicroOp(len(uops), inst))
    return Trace(uops, name=name)


def load_spike_log(path: str, name: Optional[str] = None,
                   max_uops: Optional[int] = None) -> Trace:
    """Read a Spike commit-log file into a trace."""
    with open(path) as handle:
        return from_spike_log(handle, name=name or path, max_uops=max_uops)


# --------------------------------------------------------------- JSON lines --

def save_trace(trace: Trace, target: Union[str, TextIO]) -> None:
    """Write a trace as JSON-lines (one µ-op per line)."""
    own = isinstance(target, str)
    handle = open(target, "w") if own else target
    try:
        handle.write(json.dumps({"format": "repro-trace", "version": 1,
                                 "name": trace.name}) + "\n")
        for uop in trace:
            inst = uop.inst
            record = {
                "pc": uop.pc, "mnemonic": inst.mnemonic,
                "rd": inst.rd, "rs1": inst.rs1, "rs2": inst.rs2,
                "imm": inst.imm,
            }
            if uop.is_memory:
                record["addr"] = uop.addr
            if uop.is_control:
                record["taken"] = uop.taken
                record["target_pc"] = uop.target_pc
            handle.write(json.dumps(record) + "\n")
    finally:
        if own:
            handle.close()


def load_trace(source: Union[str, TextIO]) -> Trace:
    """Read a JSON-lines trace written by :func:`save_trace`."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        header = json.loads(handle.readline())
        if header.get("format") != "repro-trace":
            raise TraceFormatError("not a repro trace file")
        static_cache = {}
        uops: List[MicroOp] = []
        for line in handle:
            record = json.loads(line)
            key = (record["mnemonic"], record["rd"], record["rs1"],
                   record["rs2"], record["imm"], record["pc"])
            inst = static_cache.get(key)
            if inst is None:
                from repro.isa.instructions import MEM_SIZE
                inst = Instruction(
                    mnemonic=record["mnemonic"],
                    rd=record["rd"], rs1=record["rs1"], rs2=record["rs2"],
                    imm=record["imm"],
                    opclass=opclass_for(record["mnemonic"]),
                    mem_size=MEM_SIZE.get(record["mnemonic"], 0),
                    pc=record["pc"])
                static_cache[key] = inst
            uops.append(MicroOp(
                len(uops), inst, addr=record.get("addr", 0),
                taken=record.get("taken", False),
                target_pc=record.get("target_pc", 0)))
        return Trace(uops, name=header.get("name", "trace"))
    finally:
        if own:
            handle.close()
