"""Dynamic µ-op traces.

A :class:`MicroOp` is one dynamically executed instruction with its
resolved effective address and branch outcome.  Traces are what the
fusion analyses (:mod:`repro.fusion`) and the cycle-level pipeline
(:mod:`repro.pipeline`) consume — mirroring the paper's methodology of
a functional simulator (Spike) injecting instructions into a timing
model.

In this reproduction, as in the paper (footnote 2), every RISC-V
instruction translates to exactly one µ-op, so "instruction" and
"µ-op" are interchangeable at trace level.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Optional

from repro.isa.instructions import Instruction, OpClass


class MicroOp:
    """One dynamic µ-op.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream (0-based).
    inst:
        The static :class:`~repro.isa.instructions.Instruction`.
    pc:
        Program counter of the instruction.
    dest / srcs:
        Architectural destination (or ``None``) and source register
        indices, with ``x0`` filtered out.
    addr / size:
        Effective byte address and access size for memory µ-ops
        (0 otherwise).
    taken / target_seq:
        For control µ-ops, the resolved direction and the *dynamic*
        sequence number that follows (always ``seq + 1`` on the correct
        path, kept for clarity in tests).
    """

    __slots__ = (
        "seq", "inst", "pc", "opclass", "opclass_i", "dest", "srcs",
        "addr", "size", "taken", "target_pc",
        # Predicates precomputed at construction: the pipeline and the
        # fusion window test them once or more per µ-op per stage, and
        # a slot read is several times cheaper than a property call.
        "is_load", "is_store", "is_memory", "is_branch", "is_control",
        "is_serializing",
    )

    def __init__(self, seq: int, inst: Instruction, addr: int = 0,
                 taken: bool = False, target_pc: int = 0):
        self.seq = seq
        self.inst = inst
        self.pc = inst.pc
        opclass = inst.opclass
        self.opclass = opclass
        # Plain-int mirror: the pipeline indexes port quotas and
        # latency tables per µ-op, where IntEnum.__index__ is overhead.
        self.opclass_i = opclass._value_
        self.dest = inst.destination
        self.srcs = inst.sources
        self.addr = addr
        self.size = inst.mem_size
        self.taken = taken
        self.target_pc = target_pc
        is_load = opclass is OpClass.LOAD
        is_store = opclass is OpClass.STORE
        is_branch = opclass is OpClass.BRANCH
        self.is_load = is_load
        self.is_store = is_store
        self.is_memory = is_load or is_store
        self.is_branch = is_branch
        self.is_control = is_branch or opclass is OpClass.JUMP
        self.is_serializing = (opclass is OpClass.FENCE
                               or opclass is OpClass.SYSTEM)

    @property
    def base_reg(self) -> Optional[int]:
        """Architectural base register of a memory µ-op."""
        return self.inst.rs1 if self.is_memory else None

    @property
    def offset(self) -> int:
        """Displacement of a memory µ-op."""
        return self.inst.imm

    @property
    def end_addr(self) -> int:
        """One past the last byte accessed."""
        return self.addr + self.size

    def line(self, line_bytes: int = 64) -> int:
        """Cache line frame of the first accessed byte."""
        return self.addr // line_bytes

    def __repr__(self) -> str:
        if self.is_memory:
            return "<uop %d %s addr=0x%x size=%d>" % (
                self.seq, self.inst.mnemonic, self.addr, self.size)
        return "<uop %d %s>" % (self.seq, self.inst.mnemonic)


class Trace:
    """An ordered dynamic µ-op stream plus summary statistics.

    Traces are captured once and replayed many times (the trace store
    under :mod:`repro.workloads.trace_store` shares one instance across
    every configuration of a sweep), so the summary statistics are
    memoised on first use; ``__weakref__`` is kept in the slots so
    per-trace analysis caches can key on the instance without pinning
    it.
    """

    __slots__ = ("uops", "name", "_opclass_counts", "__weakref__")

    def __init__(self, uops: list[MicroOp], name: str = "trace"):
        self.uops = uops
        self.name = name
        self._opclass_counts: Optional[dict[OpClass, int]] = None

    def __len__(self) -> int:
        return len(self.uops)

    def __getitem__(self, index):
        return self.uops[index]

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.uops)

    def opclass_counts(self) -> dict[OpClass, int]:
        if self._opclass_counts is None:
            counts: dict[OpClass, int] = {}
            for uop in self.uops:
                counts[uop.opclass] = counts.get(uop.opclass, 0) + 1
            self._opclass_counts = counts
        return dict(self._opclass_counts)

    @property
    def num_loads(self) -> int:
        return self.opclass_counts().get(OpClass.LOAD, 0)

    @property
    def num_stores(self) -> int:
        return self.opclass_counts().get(OpClass.STORE, 0)

    @property
    def num_memory(self) -> int:
        return self.num_loads + self.num_stores

    @property
    def num_branches(self) -> int:
        return self.opclass_counts().get(OpClass.BRANCH, 0)

    def memory_fraction(self) -> float:
        """Fraction of dynamic µ-ops that are loads or stores."""
        if not self.uops:
            return 0.0
        return self.num_memory / len(self.uops)

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace (µ-ops keep their original sequence numbers)."""
        return Trace(self.uops[start:stop], name="%s[%d:%d]" % (self.name, start, stop))

    def segment(self, start: int, stop: int) -> "Trace":
        """A standalone, *renumbered* sub-trace (sequence numbers
        0..n-1).

        The pipeline core indexes its trace list by sequence number
        (``_flush_from``), so a sub-trace simulated on its own must be
        renumbered — unlike :meth:`slice`, which preserves the original
        numbering for analyses that cross-reference the parent trace.
        Fresh :class:`MicroOp` shells are built, but the static
        :class:`Instruction` objects are shared with the parent, so
        identity-keyed caches (fusion-window match memo, trace-level
        analysis memos) stay coherent.
        """
        uops = [MicroOp(seq, mo.inst, addr=mo.addr, taken=mo.taken,
                        target_pc=mo.target_pc)
                for seq, mo in enumerate(self.uops[start:stop])]
        return Trace(uops, name="%s[%d:%d]" % (self.name, start, stop))


def footprint(uops: Sequence[MicroOp], line_bytes: int = 64) -> int:
    """Number of distinct cache lines touched by the memory µ-ops."""
    return len({u.line(line_bytes) for u in uops if u.is_memory})
