"""Architectural register naming for the RV64G subset.

Integer registers ``x0``–``x31`` map to indices 0–31 and floating point
registers ``f0``–``f31`` map to indices 32–63, so a single flat index
space can be used throughout the tracer and the pipeline.  ``x0`` is
hard-wired to zero; writes to it are discarded and it never creates a
dependency.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
FP_REG_BASE = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

ZERO_REG = 0

# RISC-V integer ABI mnemonics, in index order.
_INT_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

# RISC-V floating-point ABI mnemonics, in index order.
_FP_ABI_NAMES = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
)


def _build_name_table() -> dict:
    table = {}
    for i in range(NUM_INT_REGS):
        table["x%d" % i] = i
        table[_INT_ABI_NAMES[i]] = i
    # "fp" is the conventional alias for s0/x8.
    table["fp"] = 8
    for i in range(NUM_FP_REGS):
        table["f%d" % i] = FP_REG_BASE + i
        table[_FP_ABI_NAMES[i]] = FP_REG_BASE + i
    return table


_NAME_TO_INDEX = _build_name_table()


def reg_index(name: str) -> int:
    """Return the flat register index for a register name.

    Accepts both numeric (``x7``, ``f3``) and ABI (``a0``, ``fa2``)
    spellings.  Raises :class:`KeyError` for unknown names.
    """
    return _NAME_TO_INDEX[name.lower()]


def reg_name(index: int) -> str:
    """Return the canonical (numeric) name for a flat register index."""
    if 0 <= index < NUM_INT_REGS:
        return "x%d" % index
    if FP_REG_BASE <= index < NUM_ARCH_REGS:
        return "f%d" % (index - FP_REG_BASE)
    raise ValueError("register index out of range: %d" % index)


def is_fp_reg(index: int) -> bool:
    """True when the flat index names a floating-point register."""
    return FP_REG_BASE <= index < NUM_ARCH_REGS


def is_valid_reg(index: int) -> bool:
    """True when the flat index names any architectural register."""
    return 0 <= index < NUM_ARCH_REGS
